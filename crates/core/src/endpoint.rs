//! The GCS end-point: composition of the three layers.

use crate::config::Config;
use crate::forward::ForwardCmd;
use crate::state::{State, SyncRecord};
use crate::{sd, vs, wv};
use vsgm_ioa::Automaton;
use vsgm_obs::{names, NoopRecorder, ObsEvent, Recorder};
use vsgm_types::{
    AppMsg, FwdPayload, NetMsg, ProcSet, ProcessId, StartChangeId, SyncPayload, View,
};

/// An input action of the end-point (inputs are always enabled; effects
/// are disabled while crashed, §8).
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// `send_p(m)` from the local application.
    AppSend(AppMsg),
    /// `block_ok_p()` from the local application (Fig. 11).
    BlockOk,
    /// `mbrshp.start_change_p(cid, set)` from the membership service.
    StartChange {
        /// Locally unique start-change identifier.
        cid: StartChangeId,
        /// Suggested membership.
        set: ProcSet,
    },
    /// `mbrshp.view_p(v)` from the membership service.
    MbrshpView(View),
    /// `co_rfifo.deliver_{q,p}(m)` from the transport.
    Net {
        /// The sending peer.
        from: ProcessId,
        /// The wire message.
        msg: NetMsg,
    },
    /// `crash_p()` (§8).
    Crash,
    /// `recover_p()` (§8) — restart with initial state, same identity.
    Recover,
    /// Clock advance to the given absolute microsecond timestamp (the
    /// driver's clock: simulated time under the harness, wall clock in a
    /// real node pump). Only the batching linger deadline
    /// ([`Config::batch`]) observes it; with batching off it is inert.
    Tick(u64),
}

/// An externally visible effect of the end-point.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// `deliver_p(q, m)`: hand `msg` from `from` to the local application.
    DeliverApp {
        /// Original sender.
        from: ProcessId,
        /// The delivered payload.
        msg: AppMsg,
    },
    /// `view_p(v, T)`: install a view with its transitional set.
    InstallView {
        /// The new view.
        view: View,
        /// The transitional set (Property 4.1).
        transitional: ProcSet,
    },
    /// `block_p()`: ask the application to stop sending.
    Block,
    /// `co_rfifo.send_p(set, m)`: hand a message to the transport.
    NetSend {
        /// Destination set.
        to: ProcSet,
        /// The wire message.
        msg: NetMsg,
    },
    /// `co_rfifo.reliable_p(set)`: reconfigure the transport's reliable
    /// connections.
    SetReliable(ProcSet),
    /// Self-stabilization ([`Config::audit`]): the tick-cadence
    /// [`crate::audit`] pass found the local state illegal and the
    /// end-point reset itself through the §8 recovery path. The driver
    /// should treat this exactly like an observed crash+recover pair —
    /// tear down the end-point's channels and re-admit it through the
    /// membership service.
    Reconciled,
}

/// A locally controlled action, in canonical firing order.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `co_rfifo.reliable_p(set)`.
    SetReliable,
    /// `co_rfifo.send_p(…, tag=view_msg, v)`.
    SendViewMsg,
    /// `co_rfifo.send_p(…, tag=sync_msg, …)` (Fig. 10/11).
    SendSyncMsg,
    /// `block_p()` (Fig. 11).
    Block,
    /// §9 extension: the aggregation leader flushes its batch.
    FlushAgg,
    /// `co_rfifo.send_p(…, tag=app_msg, m)`.
    SendAppMsg,
    /// `deliver_p(q, m)`: deliver the next message from `q`.
    DeliverApp(ProcessId),
    /// `view_p(v, T)`.
    DeliverView,
    /// `co_rfifo.send_p(…, tag=fwd_msg, …)` per the forwarding strategy.
    Forward(ForwardCmd),
}

/// The driving interface shared by every group-multicast end-point in
/// this workspace (the paper's algorithm in this crate and the two-round
/// pre-agreement baseline in `vsgm-baseline`), letting the simulation
/// harness and experiments run either behind the same scenarios.
pub trait GroupEndpoint {
    /// The end-point's identity.
    fn pid(&self) -> ProcessId;
    /// Applies one input action, returning immediate effects.
    fn handle(&mut self, input: Input) -> Vec<Effect>;
    /// Fires every enabled locally controlled action until quiescence.
    fn poll(&mut self) -> Vec<Effect>;
    /// [`GroupEndpoint::handle`] with an observability [`Recorder`].
    /// The default ignores the recorder, so un-instrumented end-points
    /// (e.g. comparison baselines) keep working unchanged.
    fn handle_rec(&mut self, input: Input, rec: &mut dyn Recorder) -> Vec<Effect> {
        let _ = rec;
        self.handle(input)
    }
    /// [`GroupEndpoint::poll`] with an observability [`Recorder`].
    fn poll_rec(&mut self, rec: &mut dyn Recorder) -> Vec<Effect> {
        let _ = rec;
        self.poll()
    }
    /// The view last delivered to the application.
    fn current_view(&self) -> &View;
    /// Whether a view change is in progress.
    fn reconfiguring(&self) -> bool;
    /// Whether the end-point is crashed.
    fn is_crashed(&self) -> bool;
    /// The absolute [`Input::Tick`] timestamp at which a held message
    /// batch flushes on its own, if one is pending. Drivers advance their
    /// clock here when the network is otherwise idle. The default (`None`)
    /// suits end-points without a batching stage.
    fn next_deadline_us(&self) -> Option<u64> {
        None
    }
}

impl GroupEndpoint for Endpoint {
    fn pid(&self) -> ProcessId {
        Endpoint::pid(self)
    }
    fn handle(&mut self, input: Input) -> Vec<Effect> {
        Endpoint::handle(self, input)
    }
    fn poll(&mut self) -> Vec<Effect> {
        Endpoint::poll(self)
    }
    fn handle_rec(&mut self, input: Input, rec: &mut dyn Recorder) -> Vec<Effect> {
        Endpoint::handle_rec(self, input, rec)
    }
    fn poll_rec(&mut self, rec: &mut dyn Recorder) -> Vec<Effect> {
        Endpoint::poll_rec(self, rec)
    }
    fn current_view(&self) -> &View {
        Endpoint::current_view(self)
    }
    fn reconfiguring(&self) -> bool {
        Endpoint::reconfiguring(self)
    }
    fn is_crashed(&self) -> bool {
        Endpoint::is_crashed(self)
    }
    fn next_deadline_us(&self) -> Option<u64> {
        Endpoint::next_deadline_us(self)
    }
}

/// Running protocol counters for one end-point, exposed via
/// [`Endpoint::stats`] so deployments can monitor reconfiguration and
/// traffic behavior without instrumenting the transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Views installed (application-visible `view(v, T)` events).
    pub views_installed: u64,
    /// Own application messages multicast via `CO_RFIFO`.
    pub msgs_sent: u64,
    /// Application messages delivered locally (own and peers').
    pub msgs_delivered: u64,
    /// Synchronization messages produced (one per answered change).
    pub syncs_sent: u64,
    /// Forwarded-message sends performed on behalf of other end-points.
    pub forwards_sent: u64,
    /// Block requests issued to the application.
    pub blocks: u64,
}

impl EndpointStats {
    /// Rebuilds the counters from an observability registry filled by the
    /// instrumented end-point hooks ([`Endpoint::handle_rec`] /
    /// [`Endpoint::poll_rec`]). The registry aggregates across every
    /// end-point that reported into it, so this is the *group-wide* view;
    /// per-end-point numbers remain available via [`Endpoint::stats`].
    pub fn from_registry(reg: &vsgm_obs::Registry) -> EndpointStats {
        EndpointStats {
            views_installed: reg.counter(names::EP_VIEWS_INSTALLED),
            msgs_sent: reg.counter(names::EP_MSGS_SENT),
            msgs_delivered: reg.counter(names::EP_MSGS_DELIVERED),
            syncs_sent: reg.counter(names::EP_SYNCS_SENT),
            forwards_sent: reg.counter(names::EP_FORWARDS_SENT),
            blocks: reg.counter(names::EP_BLOCKS),
        }
    }
}

/// A GCS end-point: the executable `GCS_p` automaton (or a configured
/// prefix of its inheritance chain — see [`Config::stack`]).
///
/// Drive it by feeding [`Input`]s with [`Endpoint::handle`] and letting it
/// fire its enabled locally controlled actions, either one at a time
/// through the [`Automaton`] interface (for schedule-exploring tests) or
/// in bulk with [`Endpoint::poll`].
#[derive(Debug, Clone)]
pub struct Endpoint {
    cfg: Config,
    st: State,
    stats: EndpointStats,
}

impl Endpoint {
    /// Creates an end-point with identity `pid` in its initial singleton
    /// view.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` enables both `implicit_cuts` and `aggregation`:
    /// leader-relayed synchronization messages do not ride the sender's
    /// FIFO stream, so their positions carry no meaning.
    pub fn new(pid: ProcessId, cfg: Config) -> Self {
        assert!(
            !(cfg.implicit_cuts && cfg.aggregation),
            "implicit_cuts and aggregation are mutually exclusive"
        );
        Endpoint { cfg, st: State::new(pid), stats: EndpointStats::default() }
    }

    /// Running protocol counters (reset on §8 recovery, like the rest of
    /// the volatile state).
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// This end-point's identity.
    pub fn pid(&self) -> ProcessId {
        self.st.pid
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The view last delivered to the application.
    pub fn current_view(&self) -> &View {
        &self.st.current_view
    }

    /// Whether a view change is pending (`start_change ≠ ⊥`).
    pub fn reconfiguring(&self) -> bool {
        self.st.start_change.is_some()
    }

    /// Whether the end-point is crashed (§8).
    pub fn is_crashed(&self) -> bool {
        self.st.crashed
    }

    /// Read access to the full state (for checkers, strategies, tests).
    pub fn state(&self) -> &State {
        &self.st
    }

    /// Applies one input action. Returns any immediate effects (only the
    /// §9 aggregation relay produces effects from inputs; everything else
    /// surfaces through the locally controlled actions).
    pub fn handle(&mut self, input: Input) -> Vec<Effect> {
        self.handle_rec(input, &mut NoopRecorder)
    }

    /// [`Endpoint::handle`] with an observability [`Recorder`]: journals
    /// protocol events (start_change receipt, sync receipt, block_ok,
    /// recovery reset) as they are processed.
    pub fn handle_rec(&mut self, input: Input, rec: &mut dyn Recorder) -> Vec<Effect> {
        if self.st.crashed {
            if input == Input::Recover {
                self.st.reset();
                self.stats = EndpointStats::default();
                rec.event(self.st.pid, None, ObsEvent::RecoveryReset);
            }
            return Vec::new(); // §8: input effects disabled while crashed
        }
        match input {
            Input::AppSend(m) => {
                wv::on_app_send(&mut self.st, m);
                Vec::new()
            }
            Input::BlockOk => {
                rec.event(self.st.pid, self.current_cid(), ObsEvent::BlockOk);
                if self.cfg.stack.has_sd() {
                    sd::on_block_ok(&mut self.st);
                }
                Vec::new()
            }
            Input::StartChange { cid, set } => {
                rec.event(self.st.pid, Some(cid), ObsEvent::StartChangeRecv);
                if self.cfg.stack.has_vs() {
                    vs::on_start_change(&mut self.st, cid, set);
                }
                Vec::new()
            }
            Input::MbrshpView(v) => {
                wv::on_mbrshp_view(&mut self.st, v);
                Vec::new()
            }
            Input::Net { from, msg } => self.handle_net(from, msg, rec),
            Input::Crash => {
                self.st.crashed = true;
                Vec::new()
            }
            Input::Recover => Vec::new(), // not crashed: no-op
            Input::Tick(us) => {
                self.st.now_us = self.st.now_us.max(us);
                if self.cfg.audit && crate::audit::check(&self.cfg, &self.st).is_err() {
                    return self.reconcile(rec);
                }
                Vec::new()
            }
        }
    }

    /// The local start-change id of the view change in progress — the
    /// span key under which observability events are journaled.
    fn current_cid(&self) -> Option<StartChangeId> {
        self.st.start_change.as_ref().map(|(cid, _)| *cid)
    }

    /// Damages the protocol state with one [`crate::corrupt`] mutator —
    /// the fault-injection hook of the self-stabilization tier. Test
    /// drivers only; nothing in the protocol calls this.
    pub fn corrupt(&mut self, kind: crate::corrupt::CorruptionKind, salt: u64) {
        crate::corrupt::apply(&mut self.st, kind, salt);
    }

    /// The §8 self-reset taken when the tick-cadence audit finds the
    /// state illegal: journal the detection, wipe the volatile state
    /// exactly as a crash+recover pair would, and tell the driver via
    /// [`Effect::Reconciled`]. (Drivers wanting the specific failed
    /// check re-run [`crate::audit::check`] before feeding the tick.)
    fn reconcile(&mut self, rec: &mut dyn Recorder) -> Vec<Effect> {
        rec.counter(names::EP_AUDIT_FAILURES, 1);
        rec.event(self.st.pid, self.current_cid(), ObsEvent::AuditFailed);
        self.st.reset();
        self.stats = EndpointStats::default();
        rec.counter(names::EP_AUDIT_RECONCILES, 1);
        rec.event(self.st.pid, None, ObsEvent::AuditReconciled);
        vec![Effect::Reconciled]
    }

    fn handle_net(&mut self, from: ProcessId, msg: NetMsg, rec: &mut dyn Recorder) -> Vec<Effect> {
        match msg {
            NetMsg::ViewMsg(v) => {
                wv::on_view_msg(&mut self.st, from, v);
                Vec::new()
            }
            NetMsg::App(m) => {
                wv::on_app_msg(&mut self.st, from, m);
                Vec::new()
            }
            NetMsg::AppBatch(batch) => {
                // Unbatch before any protocol processing: the stored
                // stream is identical to receiving each message in its own
                // frame, so checkers and delivery order are unaffected.
                for m in batch {
                    wv::on_app_msg(&mut self.st, from, m);
                }
                Vec::new()
            }
            NetMsg::Fwd(f) => {
                wv::on_fwd_msg(&mut self.st, f);
                Vec::new()
            }
            NetMsg::Sync(payload) => {
                if !self.cfg.stack.has_vs() {
                    return Vec::new();
                }
                rec.event(self.st.pid, self.current_cid(), ObsEvent::SyncRecv);
                let srec = vs::on_sync(&mut self.st, from, &payload);
                self.maybe_relay_as_leader(from, payload.cid, srec)
            }
            NetMsg::SyncAgg(entries) => {
                if !self.cfg.stack.has_vs() {
                    return Vec::new();
                }
                for (sender, payload) in entries {
                    if sender != self.st.pid {
                        rec.event(self.st.pid, self.current_cid(), ObsEvent::SyncRecv);
                        vs::on_sync(&mut self.st, sender, &payload);
                    }
                }
                Vec::new()
            }
            // Baseline-protocol traffic is not ours; tolerate and drop it
            // (mixed deployments only occur in comparative experiments).
            NetMsg::Baseline(_) => Vec::new(),
        }
    }

    /// §9 leader logic: buffer incoming syncs; once the batch has been
    /// flushed, relay stragglers immediately.
    fn maybe_relay_as_leader(
        &mut self,
        from: ProcessId,
        cid: StartChangeId,
        rec: SyncRecord,
    ) -> Vec<Effect> {
        if !self.cfg.aggregation {
            return Vec::new();
        }
        let Some(sc_set) = self.st.agg_scope.clone() else { return Vec::new() };
        if vs::leader(&sc_set) != Some(self.st.pid) {
            return Vec::new();
        }
        self.st.agg_buffer.insert(from, (cid, rec.clone()));
        if self.st.agg_flushed {
            let to: ProcSet =
                sc_set.iter().copied().filter(|q| *q != self.st.pid && *q != from).collect();
            if to.is_empty() {
                return Vec::new();
            }
            let payload = SyncPayload { cid, view: rec.view, cut: rec.cut };
            return vec![Effect::NetSend { to, msg: NetMsg::SyncAgg(vec![(from, payload)]) }];
        }
        Vec::new()
    }

    /// The pending batch — the unsent suffix of the own current-view
    /// buffer — as `(message count, payload bytes)`.
    fn pending_batch(&self) -> (u64, usize) {
        let Some(buf) = self.st.buf(self.st.pid, &self.st.current_view) else {
            return (0, 0);
        };
        let mut count = 0u64;
        let mut bytes = 0usize;
        let mut i = self.st.last_sent + 1;
        while let Some(m) = buf.get(i) {
            count += 1;
            bytes += m.len();
            i += 1;
        }
        (count, bytes)
    }

    /// Whether the batching stage holds back an otherwise-enabled
    /// `SendAppMsg`. Any pending view change releases the hold
    /// unconditionally: the forced flush precedes the synchronization
    /// cut, so view installation (which waits for the own stream to reach
    /// its agreed bound) can never deadlock on held messages.
    fn batch_holds(&self) -> bool {
        if !self.cfg.batch.enabled() {
            return false;
        }
        if self.st.start_change.is_some() || wv::view_pre(&self.st) {
            return false;
        }
        let (count, bytes) = self.pending_batch();
        crate::batch::holds(
            &self.cfg.batch,
            count,
            bytes,
            self.st.batch_opened_us,
            self.st.now_us,
        )
    }

    /// The absolute clock value (same timebase as [`Input::Tick`]) at
    /// which the pending batch's linger deadline expires — `None` when
    /// nothing is held. Drivers use this to know how far to advance time
    /// when the network is otherwise idle.
    pub fn next_deadline_us(&self) -> Option<u64> {
        if !self.cfg.batch.enabled() {
            return None;
        }
        let opened = self.st.batch_opened_us?;
        let (count, _) = self.pending_batch();
        if count == 0 {
            return None;
        }
        Some(opened.saturating_add(self.cfg.batch.linger_us))
    }

    fn reliable_target(&self) -> ProcSet {
        if self.cfg.stack.has_vs() {
            vs::reliable_target(&self.st)
        } else {
            self.st.current_view.members().clone()
        }
    }

    fn deliver_enabled(&self, q: ProcessId) -> bool {
        let Some(_) = wv::deliver_pre(&self.st, q) else { return false };
        if self.cfg.stack.has_vs() {
            if let Some(bound) = vs::delivery_bound(&self.st, q) {
                return self.st.dlvrd(q) < bound;
            }
        }
        true
    }

    fn view_enabled(&self) -> Option<ProcSet> {
        if !wv::view_pre(&self.st) {
            return None;
        }
        if self.cfg.stack.has_vs() {
            vs::view_restriction_with(&self.st, self.cfg.implicit_cuts)
        } else {
            Some(self.st.mbrshp_view.intersection(&self.st.current_view).collect())
        }
    }

    fn flush_agg_enabled(&self) -> bool {
        if !(self.cfg.aggregation && self.cfg.stack.has_vs()) {
            return false;
        }
        let Some((cid, sc_set)) = &self.st.start_change else { return false };
        if vs::leader(sc_set) != Some(self.st.pid) || self.st.agg_flushed {
            return false;
        }
        if self.st.agg_buffer.is_empty() {
            return false;
        }
        let complete = sc_set.iter().all(|q| self.st.agg_buffer.contains_key(q));
        let view_arrived = self.st.mbrshp_view.start_id(self.st.pid) == Some(*cid);
        complete || view_arrived
    }

    /// Fires every enabled locally controlled action, in canonical order,
    /// until quiescence; returns the accumulated effects.
    ///
    /// # Panics
    ///
    /// Panics if the end-point fails to quiesce within a large internal
    /// step bound (indicates a livelock bug).
    pub fn poll(&mut self) -> Vec<Effect> {
        self.poll_rec(&mut NoopRecorder)
    }

    /// [`Endpoint::poll`] with an observability [`Recorder`]: journals
    /// sync sends, blocks, message sends/deliveries, forwards, cut
    /// agreement, and view installs as the actions fire.
    ///
    /// # Panics
    ///
    /// Panics on the same livelock bound as [`Endpoint::poll`].
    pub fn poll_rec(&mut self, rec: &mut dyn Recorder) -> Vec<Effect> {
        let mut effects = Vec::new();
        let mut steps = 0usize;
        loop {
            let actions = self.enabled_actions();
            let Some(action) = actions.first().cloned() else { return effects };
            effects.extend(self.fire_rec(&action, rec));
            steps += 1;
            assert!(steps < 1_000_000, "endpoint livelock: {action:?} keeps firing");
        }
    }
}

impl Automaton for Endpoint {
    type Action = Action;
    type Effect = Effect;

    fn enabled_actions(&self) -> Vec<Action> {
        if self.st.crashed {
            return Vec::new();
        }
        let mut out = Vec::new();
        if self.reliable_target() != self.st.reliable_set {
            out.push(Action::SetReliable);
        }
        if wv::send_view_msg_pre(&self.st) {
            out.push(Action::SendViewMsg);
        }
        if self.cfg.stack.has_vs()
            && vs::send_sync_pre(&self.st, self.cfg.implicit_cuts)
            && (!self.cfg.stack.has_sd() || sd::sync_restriction(&self.st))
        {
            out.push(Action::SendSyncMsg);
        }
        if self.cfg.stack.has_sd() && sd::block_pre(&self.st) {
            out.push(Action::Block);
        }
        if self.flush_agg_enabled() {
            out.push(Action::FlushAgg);
        }
        if wv::send_app_msg_pre(&self.st).is_some() && !self.batch_holds() {
            out.push(Action::SendAppMsg);
        }
        for q in self.st.current_view.members() {
            if self.deliver_enabled(*q) {
                out.push(Action::DeliverApp(*q));
            }
        }
        if self.view_enabled().is_some() {
            out.push(Action::DeliverView);
        }
        if self.cfg.stack.has_vs() {
            for cmd in self.cfg.forward.candidates(&self.st) {
                out.push(Action::Forward(cmd));
            }
        }
        out
    }

    fn fire(&mut self, action: &Action) -> Vec<Effect> {
        self.fire_rec(action, &mut NoopRecorder)
    }
}

impl Endpoint {
    /// Fires one locally controlled action with an observability
    /// [`Recorder`] — the instrumented body behind [`Automaton::fire`].
    fn fire_rec(&mut self, action: &Action, rec: &mut dyn Recorder) -> Vec<Effect> {
        debug_assert!(!self.st.crashed, "fire while crashed");
        match action {
            Action::SetReliable => {
                let target = self.reliable_target();
                self.st.reliable_set = target.clone();
                vec![Effect::SetReliable(target)]
            }
            Action::SendViewMsg => {
                let (set, msg) = wv::send_view_msg_eff(&mut self.st);
                if set.is_empty() {
                    Vec::new()
                } else {
                    vec![Effect::NetSend { to: set, msg }]
                }
            }
            Action::SendSyncMsg => {
                let Some(plan) = vs::send_sync_eff(
                    &mut self.st,
                    self.cfg.slim_sync,
                    self.cfg.aggregation,
                    self.cfg.implicit_cuts,
                ) else {
                    return Vec::new(); // enabled_actions() no longer offers this
                };
                self.stats.syncs_sent += 1;
                rec.counter(names::EP_SYNCS_SENT, 1);
                rec.event(self.st.pid, self.current_cid(), ObsEvent::SyncSent);
                let pid = self.st.pid;
                let latest = self.st.latest_sync_cid.entry(pid).or_insert(plan.cid);
                if plan.cid > *latest {
                    *latest = plan.cid;
                }
                plan.sends
                    .into_iter()
                    .map(|(to, msg)| Effect::NetSend { to, msg })
                    .collect()
            }
            Action::Block => {
                self.stats.blocks += 1;
                rec.counter(names::EP_BLOCKS, 1);
                rec.event(self.st.pid, self.current_cid(), ObsEvent::BlockRequested);
                sd::block_eff(&mut self.st);
                vec![Effect::Block]
            }
            Action::FlushAgg => {
                let Some((_, sc_set)) = self.st.start_change.clone() else {
                    return Vec::new(); // enabled_actions() no longer offers this
                };
                let entries: Vec<(ProcessId, SyncPayload)> = self
                    .st
                    .agg_buffer
                    .iter()
                    .map(|(sender, (cid, rec))| {
                        (
                            *sender,
                            SyncPayload {
                                cid: *cid,
                                view: rec.view.clone(),
                                cut: rec.cut.clone(),
                            },
                        )
                    })
                    .collect();
                self.st.agg_flushed = true;
                let to: ProcSet =
                    sc_set.iter().copied().filter(|q| *q != self.st.pid).collect();
                if to.is_empty() {
                    Vec::new()
                } else {
                    vec![Effect::NetSend { to, msg: NetMsg::SyncAgg(entries) }]
                }
            }
            Action::SendAppMsg => {
                // Attribute the flush before the effect consumes the
                // pending suffix.
                let reconfiguring =
                    self.st.start_change.is_some() || wv::view_pre(&self.st);
                let (pcount, pbytes) = self.pending_batch();
                let Some((set, msg, k)) = wv::send_app_batch_eff(
                    &mut self.st,
                    self.cfg.batch.max_msgs,
                    self.cfg.batch.max_bytes,
                ) else {
                    return Vec::new(); // enabled_actions() no longer offers this
                };
                self.stats.msgs_sent += k;
                rec.counter(names::EP_MSGS_SENT, k);
                // One MsgSent per covered message: the journal stream is
                // identical whether or not messages share a wire frame.
                for _ in 0..k {
                    rec.event(self.st.pid, None, ObsEvent::MsgSent);
                }
                if self.cfg.batch.enabled() {
                    let cause = crate::batch::flush_cause(
                        &self.cfg.batch,
                        reconfiguring,
                        pcount,
                        pbytes,
                    );
                    rec.counter(names::EP_BATCH_FLUSHES, 1);
                    rec.counter(cause.counter_name(), 1);
                    rec.observe(names::EP_BATCH_SIZE, k);
                    rec.event(self.st.pid, self.current_cid(), ObsEvent::BatchFlushed);
                }
                if set.is_empty() {
                    Vec::new()
                } else {
                    vec![Effect::NetSend { to: set, msg }]
                }
            }
            Action::DeliverApp(q) => {
                let Some(m) = wv::deliver_pre(&self.st, *q) else {
                    return Vec::new(); // enabled_actions() no longer offers this
                };
                self.stats.msgs_delivered += 1;
                rec.counter(names::EP_MSGS_DELIVERED, 1);
                rec.event(self.st.pid, None, ObsEvent::MsgDelivered);
                wv::deliver_eff(&mut self.st, *q);
                vec![Effect::DeliverApp { from: *q, msg: m }]
            }
            Action::DeliverView => {
                let Some(t) = self.view_enabled() else {
                    return Vec::new(); // enabled_actions() no longer offers this
                };
                self.stats.views_installed += 1;
                rec.counter(names::EP_VIEWS_INSTALLED, 1);
                // The span being closed is the view change in progress;
                // under cascades this is the latest local start-change id,
                // leaving the superseded spans open (observably obsolete).
                let span_cid = self.current_cid();
                if self.cfg.stack.has_vs() && span_cid.is_some() {
                    rec.event(self.st.pid, span_cid, ObsEvent::CutAgreed);
                }
                rec.event(self.st.pid, span_cid, ObsEvent::ViewInstalled);
                let previous = self.st.current_view.clone();
                wv::view_eff(&mut self.st);
                if self.cfg.stack.has_vs() {
                    vs::view_eff(&mut self.st);
                }
                if self.cfg.stack.has_sd() {
                    sd::view_eff(&mut self.st);
                }
                if self.cfg.gc_old_views {
                    self.st.gc(&previous);
                }
                // Re-issue application sends that arrived after the own
                // sync for the just-completed change: they were queued
                // (not stamped with the old view) and now join the new
                // view's stream in arrival order.
                let queued = std::mem::take(&mut self.st.pending_sends);
                for m in queued {
                    wv::on_app_send(&mut self.st, m);
                }
                vec![Effect::InstallView {
                    view: self.st.current_view.clone(),
                    transitional: t,
                }]
            }
            Action::Forward(cmd) => {
                let Some(msg) =
                    self.st.buf(cmd.origin, &cmd.view).and_then(|s| s.get(cmd.index)).cloned()
                else {
                    return Vec::new(); // enabled_actions() no longer offers this
                };
                self.stats.forwards_sent += 1;
                rec.counter(names::EP_FORWARDS_SENT, 1);
                rec.event(self.st.pid, self.current_cid(), ObsEvent::ForwardSent);
                for dest in &cmd.to {
                    self.st.forwarded.insert((*dest, cmd.origin, cmd.view.clone(), cmd.index));
                }
                vec![Effect::NetSend {
                    to: cmd.to.clone(),
                    msg: NetMsg::Fwd(FwdPayload {
                        origin: cmd.origin,
                        view: cmd.view.clone(),
                        index: cmd.index,
                        msg,
                    }),
                }]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Stack;
    use std::collections::HashMap;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// Minimal in-test harness: endpoints + instant FIFO message routing +
    /// a scripted membership.
    struct Net {
        eps: HashMap<ProcessId, Endpoint>,
        delivered: Vec<(ProcessId, ProcessId, AppMsg)>,
        views: Vec<(ProcessId, View, ProcSet)>,
        blocked: Vec<ProcessId>,
    }

    impl Net {
        fn new(ids: &[u64], cfg: Config) -> Self {
            Net {
                eps: ids.iter().map(|&i| (p(i), Endpoint::new(p(i), cfg.clone()))).collect(),
                delivered: Vec::new(),
                views: Vec::new(),
                blocked: Vec::new(),
            }
        }

        fn input(&mut self, to: u64, input: Input) {
            let effects = self.eps.get_mut(&p(to)).unwrap().handle(input);
            self.route(p(to), effects);
        }

        /// Poll every endpoint until global quiescence, auto-answering
        /// block requests with block_ok.
        fn settle(&mut self) {
            for _ in 0..1000 {
                let mut progress = false;
                let ids: Vec<ProcessId> = self.eps.keys().copied().collect();
                for id in ids {
                    let effects = self.eps.get_mut(&id).unwrap().poll();
                    if !effects.is_empty() {
                        progress = true;
                        self.route(id, effects);
                    }
                }
                if !progress {
                    return;
                }
            }
            panic!("network did not settle");
        }

        fn route(&mut self, from: ProcessId, effects: Vec<Effect>) {
            for e in effects {
                match e {
                    Effect::NetSend { to, msg } => {
                        for dest in to {
                            if dest == from {
                                continue;
                            }
                            let more = self
                                .eps
                                .get_mut(&dest)
                                .unwrap()
                                .handle(Input::Net { from, msg: msg.clone() });
                            self.route(dest, more);
                        }
                    }
                    Effect::DeliverApp { from: sender, msg } => {
                        self.delivered.push((from, sender, msg));
                    }
                    Effect::InstallView { view, transitional } => {
                        self.views.push((from, view, transitional));
                    }
                    Effect::Block => {
                        self.blocked.push(from);
                        let more = self.eps.get_mut(&from).unwrap().handle(Input::BlockOk);
                        self.route(from, more);
                    }
                    Effect::SetReliable(_) => {}
                    Effect::Reconciled => {}
                }
            }
        }

        /// Scripted membership: start_change + view to all members.
        fn reconfigure(&mut self, members: &[u64], epoch: u64, cid: u64) -> View {
            let member_set = set(members);
            for &m in members {
                self.input(
                    m,
                    Input::StartChange { cid: StartChangeId::new(cid), set: member_set.clone() },
                );
            }
            self.settle();
            let view = View::new(
                vsgm_types::ViewId::new(epoch, 0),
                member_set.iter().copied(),
                member_set.iter().map(|m| (*m, StartChangeId::new(cid))),
            );
            for &m in members {
                self.input(m, Input::MbrshpView(view.clone()));
            }
            self.settle();
            view
        }
    }

    #[test]
    fn singleton_self_delivery() {
        let mut net = Net::new(&[1], Config::default());
        net.input(1, Input::AppSend(AppMsg::from("solo")));
        net.settle();
        assert_eq!(net.delivered, vec![(p(1), p(1), AppMsg::from("solo"))]);
    }

    #[test]
    fn two_endpoints_form_view_and_multicast() {
        let mut net = Net::new(&[1, 2], Config::default());
        let v = net.reconfigure(&[1, 2], 1, 1);
        assert_eq!(net.views.len(), 2, "{:?}", net.views);
        for (_, view, t) in &net.views {
            assert_eq!(view, &v);
            assert!(t.contains(&view.members().iter().next().copied().unwrap()) || !t.is_empty());
        }
        net.input(1, Input::AppSend(AppMsg::from("hi")));
        net.settle();
        let receivers: Vec<ProcessId> =
            net.delivered.iter().map(|(to, _, _)| *to).collect();
        assert!(receivers.contains(&p(1)) && receivers.contains(&p(2)), "{receivers:?}");
    }

    #[test]
    fn transitional_set_is_self_on_first_view() {
        let mut net = Net::new(&[1, 2], Config::default());
        net.reconfigure(&[1, 2], 1, 1);
        // Both moved from their own singleton initial views: T = {self}.
        for (who, _, t) in &net.views {
            assert_eq!(t, &[*who].into_iter().collect::<ProcSet>(), "{:?}", net.views);
        }
    }

    #[test]
    fn transitional_set_is_full_on_joint_move() {
        let mut net = Net::new(&[1, 2], Config::default());
        net.reconfigure(&[1, 2], 1, 1);
        net.views.clear();
        net.reconfigure(&[1, 2], 2, 2);
        for (_, _, t) in &net.views {
            assert_eq!(t, &set(&[1, 2]), "{:?}", net.views);
        }
    }

    #[test]
    fn block_handshake_happens_per_view_change() {
        let mut net = Net::new(&[1, 2], Config::default());
        net.reconfigure(&[1, 2], 1, 1);
        assert_eq!(net.blocked.len(), 2);
        net.reconfigure(&[1, 2], 2, 2);
        assert_eq!(net.blocked.len(), 4);
    }

    #[test]
    fn virtual_synchrony_on_partition_shrink() {
        let mut net = Net::new(&[1, 2, 3], Config::default());
        net.reconfigure(&[1, 2, 3], 1, 1);
        net.input(1, Input::AppSend(AppMsg::from("m")));
        net.settle();
        net.delivered.clear();
        net.views.clear();
        // p3 leaves; {1,2} reconfigure.
        let member_set = set(&[1, 2]);
        for m in [1, 2] {
            net.input(
                m,
                Input::StartChange { cid: StartChangeId::new(2), set: member_set.clone() },
            );
        }
        net.settle();
        let view = View::new(
            vsgm_types::ViewId::new(2, 0),
            member_set.iter().copied(),
            member_set.iter().map(|m| (*m, StartChangeId::new(2))),
        );
        for m in [1, 2] {
            net.input(m, Input::MbrshpView(view.clone()));
        }
        net.settle();
        assert_eq!(net.views.len(), 2, "{:?}", net.views);
        for (_, _, t) in &net.views {
            assert_eq!(t, &set(&[1, 2]));
        }
    }

    #[test]
    fn obsolete_view_never_delivered() {
        let mut net = Net::new(&[1, 2], Config::default());
        net.reconfigure(&[1, 2], 1, 1);
        net.views.clear();
        // start_change cid=2, then a cascade cid=3 BEFORE the view for
        // cid=2 arrives.
        let members = set(&[1, 2]);
        for m in [1, 2] {
            net.input(m, Input::StartChange { cid: StartChangeId::new(2), set: members.clone() });
        }
        net.settle();
        for m in [1, 2] {
            net.input(m, Input::StartChange { cid: StartChangeId::new(3), set: members.clone() });
        }
        net.settle();
        // The view tagged with the OLD cids arrives: must be ignored.
        let obsolete = View::new(
            vsgm_types::ViewId::new(2, 0),
            members.iter().copied(),
            members.iter().map(|m| (*m, StartChangeId::new(2))),
        );
        for m in [1, 2] {
            net.input(m, Input::MbrshpView(obsolete.clone()));
        }
        net.settle();
        assert!(net.views.is_empty(), "obsolete view was delivered: {:?}", net.views);
        // The up-to-date view goes through.
        let fresh = View::new(
            vsgm_types::ViewId::new(3, 0),
            members.iter().copied(),
            members.iter().map(|m| (*m, StartChangeId::new(3))),
        );
        for m in [1, 2] {
            net.input(m, Input::MbrshpView(fresh.clone()));
        }
        net.settle();
        assert_eq!(net.views.len(), 2);
    }

    #[test]
    fn messages_delivered_during_reconfiguration() {
        // The paper: "our algorithm allows some application messages to be
        // delivered while it is reconfiguring."
        let mut net = Net::new(&[1, 2], Config::default());
        net.reconfigure(&[1, 2], 1, 1);
        // In-flight message sent before the change...
        net.input(1, Input::AppSend(AppMsg::from("during")));
        net.delivered.clear();
        let members = set(&[1, 2]);
        for m in [1, 2] {
            net.input(m, Input::StartChange { cid: StartChangeId::new(2), set: members.clone() });
        }
        net.settle();
        // Delivered while no view has arrived yet (still reconfiguring).
        assert!(
            net.delivered.iter().any(|(_, _, m)| m == &AppMsg::from("during")),
            "{:?}",
            net.delivered
        );
        assert!(net.eps[&p(1)].reconfiguring());
    }

    #[test]
    fn crash_disables_recover_restores() {
        let mut ep = Endpoint::new(p(1), Config::default());
        ep.handle(Input::Crash);
        assert!(ep.is_crashed());
        assert!(ep.enabled_actions().is_empty());
        ep.handle(Input::AppSend(AppMsg::from("lost")));
        ep.handle(Input::Recover);
        assert!(!ep.is_crashed());
        // The pre-crash send is gone (no stable storage).
        assert_eq!(ep.state().buf(p(1), ep.current_view()).map_or(0, |b| b.last_index()), 0);
    }

    #[test]
    fn wv_stack_ignores_start_change_and_installs_views_directly() {
        let cfg = Config { stack: Stack::Wv, ..Config::default() };
        let mut net = Net::new(&[1, 2], cfg);
        // No sync round needed: view installs straight away.
        let members = set(&[1, 2]);
        let view = View::new(
            vsgm_types::ViewId::new(1, 0),
            members.iter().copied(),
            members.iter().map(|m| (*m, StartChangeId::new(1))),
        );
        for m in [1, 2] {
            net.input(m, Input::MbrshpView(view.clone()));
        }
        net.settle();
        assert_eq!(net.views.len(), 2);
        assert!(net.blocked.is_empty(), "WV stack never blocks");
    }

    #[test]
    fn vs_stack_without_sd_never_blocks() {
        let cfg = Config { stack: Stack::VsTs, ..Config::default() };
        let mut net = Net::new(&[1, 2], cfg);
        net.reconfigure(&[1, 2], 1, 1);
        assert_eq!(net.views.len(), 2);
        assert!(net.blocked.is_empty());
    }

    #[test]
    fn aggregation_stack_still_reaches_view() {
        let cfg = Config { aggregation: true, ..Config::default() };
        let mut net = Net::new(&[1, 2, 3], cfg);
        net.reconfigure(&[1, 2, 3], 1, 1);
        assert_eq!(net.views.len(), 3, "{:?}", net.views);
    }

    #[test]
    fn slim_sync_stack_still_reaches_view() {
        let cfg = Config { slim_sync: true, ..Config::default() };
        let mut net = Net::new(&[1, 2], cfg);
        net.reconfigure(&[1, 2], 1, 1);
        net.views.clear();
        net.reconfigure(&[1, 2], 2, 2);
        assert_eq!(net.views.len(), 2);
        for (_, _, t) in &net.views {
            assert_eq!(t, &set(&[1, 2]));
        }
    }

    fn batched_cfg(max_msgs: u64, linger_us: u64) -> Config {
        Config {
            batch: crate::batch::BatchConfig { max_msgs, max_bytes: 64 * 1024, linger_us },
            ..Config::default()
        }
    }

    #[test]
    fn batch_holds_until_count_then_one_frame_carries_all() {
        let mut net = Net::new(&[1, 2], batched_cfg(3, 1_000_000));
        net.reconfigure(&[1, 2], 1, 1);
        net.delivered.clear();
        // Two sends: under the count limit, long linger — held.
        net.input(1, Input::AppSend(AppMsg::from("a")));
        net.input(1, Input::AppSend(AppMsg::from("b")));
        net.settle();
        assert!(
            !net.delivered.iter().any(|(to, _, _)| *to == p(2)),
            "held batch leaked to the wire: {:?}",
            net.delivered
        );
        assert_eq!(net.eps[&p(1)].next_deadline_us(), Some(1_000_000));
        // Third send reaches the count limit: everything flushes at once.
        net.input(1, Input::AppSend(AppMsg::from("c")));
        net.settle();
        let at2: Vec<&AppMsg> = net
            .delivered
            .iter()
            .filter(|(to, from, _)| *to == p(2) && *from == p(1))
            .map(|(_, _, m)| m)
            .collect();
        assert_eq!(at2, vec![&AppMsg::from("a"), &AppMsg::from("b"), &AppMsg::from("c")]);
        assert_eq!(net.eps[&p(1)].next_deadline_us(), None);
    }

    #[test]
    fn linger_deadline_releases_held_batch_on_tick() {
        let mut net = Net::new(&[1, 2], batched_cfg(8, 500));
        net.reconfigure(&[1, 2], 1, 1);
        net.delivered.clear();
        net.input(1, Input::AppSend(AppMsg::from("m")));
        net.settle();
        assert!(net.delivered.is_empty(), "{:?}", net.delivered);
        // Advance short of the deadline: still held.
        net.input(1, Input::Tick(499));
        net.settle();
        assert!(net.delivered.is_empty(), "{:?}", net.delivered);
        net.input(1, Input::Tick(500));
        net.settle();
        assert!(
            net.delivered.iter().any(|(to, _, m)| *to == p(2) && m == &AppMsg::from("m")),
            "{:?}",
            net.delivered
        );
    }

    #[test]
    fn view_change_flushes_half_full_batch_before_cut() {
        let mut net = Net::new(&[1, 2], batched_cfg(8, 1_000_000));
        net.reconfigure(&[1, 2], 1, 1);
        net.delivered.clear();
        net.views.clear();
        // Half-full batch held at p1, then a view change races it.
        net.input(1, Input::AppSend(AppMsg::from("held")));
        net.settle();
        assert!(net.delivered.is_empty(), "{:?}", net.delivered);
        net.reconfigure(&[1, 2], 2, 2);
        // The view installed everywhere (no deadlock on the held batch)…
        assert_eq!(net.views.len(), 2, "{:?}", net.views);
        // …and the held message was delivered to everyone in the OLD view
        // (it was flushed before the synchronization cut).
        for target in [1u64, 2] {
            assert!(
                net.delivered
                    .iter()
                    .any(|(to, from, m)| *to == p(target)
                        && *from == p(1)
                        && m == &AppMsg::from("held")),
                "missing delivery at p{target}: {:?}",
                net.delivered
            );
        }
    }

    #[test]
    fn batch_flush_is_journalled_with_cause_and_size() {
        use vsgm_obs::ObsRecorder;
        let mut ep = Endpoint::new(p(1), batched_cfg(2, 1_000_000));
        let mut rec = ObsRecorder::new();
        ep.handle_rec(Input::AppSend(AppMsg::from("a")), &mut rec);
        ep.handle_rec(Input::AppSend(AppMsg::from("b")), &mut rec);
        let _ = ep.poll_rec(&mut rec);
        assert_eq!(rec.journal().count(ObsEvent::BatchFlushed), 1);
        let reg = rec.registry();
        assert_eq!(reg.counter(names::EP_BATCH_FLUSHES), 1);
        assert_eq!(reg.counter(names::EP_BATCH_FLUSH_COUNT), 1);
        assert_eq!(reg.counter(names::EP_BATCH_FLUSH_LINGER), 0);
        let h = reg.histogram(names::EP_BATCH_SIZE).expect("batch size recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 2);
        // Per-message journal parity: two MsgSent events despite the
        // single wire frame.
        assert_eq!(rec.journal().count(ObsEvent::MsgSent), 2);
    }

    #[test]
    fn send_racing_view_change_lands_in_new_view() {
        // Regression for the view-stamping bug: a send arriving after the
        // own sync message was already sent must NOT be stamped with the
        // old view — it is queued and re-issued in the next view.
        let mut net = Net::new(&[1, 2], Config::default());
        net.reconfigure(&[1, 2], 1, 1);
        net.delivered.clear();
        let members = set(&[1, 2]);
        for m in [1, 2] {
            net.input(m, Input::StartChange { cid: StartChangeId::new(2), set: members.clone() });
        }
        net.settle();
        // Both endpoints have sent their syncs (settle drains all locally
        // controlled actions). A send now hits the closed window.
        assert!(net.eps[&p(1)]
            .state()
            .sync(p(1), StartChangeId::new(2))
            .is_some());
        net.input(1, Input::AppSend(AppMsg::from("racer")));
        net.settle();
        assert!(net.delivered.is_empty(), "{:?}", net.delivered);
        assert_eq!(
            net.eps[&p(1)].state().pending_sends,
            vec![AppMsg::from("racer")]
        );
        // The view arrives; the queued send goes out in the NEW view.
        let view = View::new(
            vsgm_types::ViewId::new(2, 0),
            members.iter().copied(),
            members.iter().map(|m| (*m, StartChangeId::new(2))),
        );
        for m in [1, 2] {
            net.input(m, Input::MbrshpView(view.clone()));
        }
        net.settle();
        let deliveries: Vec<&(ProcessId, ProcessId, AppMsg)> = net
            .delivered
            .iter()
            .filter(|(_, _, m)| m == &AppMsg::from("racer"))
            .collect();
        assert_eq!(deliveries.len(), 2, "{:?}", net.delivered);
        for ep in net.eps.values() {
            assert_eq!(ep.current_view(), &view);
            assert!(ep.state().pending_sends.is_empty());
            // The message sits in the NEW view's own buffer, not the old.
            if ep.pid() == p(1) {
                assert_eq!(
                    ep.state().buf(p(1), &view).map_or(0, |b| b.last_index()),
                    1
                );
            }
        }
    }

    #[test]
    fn audit_tick_reconciles_a_corrupted_endpoint() {
        use crate::corrupt::CorruptionKind;
        use vsgm_obs::{ObsRecorder, Recorder};
        let cfg = Config { audit: true, ..Config::default() };
        let mut net = Net::new(&[1, 2], cfg);
        net.reconfigure(&[1, 2], 1, 1);
        let ep = net.eps.get_mut(&p(1)).unwrap();
        ep.corrupt(CorruptionKind::ScrambleMembership, 0);
        let mut rec = ObsRecorder::new();
        let effects = ep.handle_rec(Input::Tick(1), &mut rec);
        assert_eq!(effects, vec![Effect::Reconciled]);
        // Reset to the initial state, §8-style.
        assert_eq!(ep.current_view(), &View::initial(p(1)));
        assert_eq!(ep.stats(), EndpointStats::default());
        let reg = rec.registry();
        assert_eq!(reg.counter(names::EP_AUDIT_FAILURES), 1);
        assert_eq!(reg.counter(names::EP_AUDIT_RECONCILES), 1);
        assert_eq!(rec.journal().count(ObsEvent::AuditFailed), 1);
        assert_eq!(rec.journal().count(ObsEvent::AuditReconciled), 1);
        // The next tick finds the fresh state legal: no further resets.
        assert!(ep.handle(Input::Tick(2)).is_empty());
    }

    #[test]
    fn audit_off_ticks_never_reconcile() {
        use crate::corrupt::CorruptionKind;
        let mut net = Net::new(&[1, 2], Config::default());
        let v = net.reconfigure(&[1, 2], 1, 1);
        let ep = net.eps.get_mut(&p(1)).unwrap();
        ep.corrupt(CorruptionKind::FutureViewId, 0);
        assert!(ep.handle(Input::Tick(1)).is_empty());
        // The damage is still there — nothing noticed it.
        assert!(ep.current_view().id() > v.id());
    }

    #[test]
    fn fifo_order_preserved_end_to_end() {
        let mut net = Net::new(&[1, 2], Config::default());
        net.reconfigure(&[1, 2], 1, 1);
        net.delivered.clear();
        for i in 0..10 {
            net.input(1, Input::AppSend(AppMsg::from(format!("m{i}").as_str())));
        }
        net.settle();
        let at2: Vec<&AppMsg> = net
            .delivered
            .iter()
            .filter(|(to, from, _)| *to == p(2) && *from == p(1))
            .map(|(_, _, m)| m)
            .collect();
        assert_eq!(at2.len(), 10);
        for (i, m) in at2.iter().enumerate() {
            assert_eq!(**m, AppMsg::from(format!("m{i}").as_str()));
        }
    }
}
