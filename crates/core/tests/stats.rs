//! The endpoint's protocol counters.

use vsgm_core::{Config, Effect, Endpoint, Input};
use vsgm_types::{
    AppMsg, Cut, NetMsg, ProcSet, ProcessId, StartChangeId, SyncPayload, View, ViewId,
};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn set(ids: &[u64]) -> ProcSet {
    ids.iter().map(|&i| p(i)).collect()
}

fn pair_view(epoch: u64, cid: u64) -> View {
    View::new(
        ViewId::new(epoch, 0),
        [p(1), p(2)],
        [(p(1), StartChangeId::new(cid)), (p(2), StartChangeId::new(cid))],
    )
}

/// Drives one endpoint through a full view change, answering for the
/// absent peer p2.
fn full_change(ep: &mut Endpoint, epoch: u64, cid: u64) {
    ep.handle(Input::StartChange { cid: StartChangeId::new(cid), set: set(&[1, 2]) });
    ep.poll();
    ep.handle(Input::BlockOk);
    ep.poll();
    ep.handle(Input::Net {
        from: p(2),
        msg: NetMsg::Sync(SyncPayload {
            cid: StartChangeId::new(cid),
            view: Some(ep.current_view().clone()),
            cut: Cut::new(),
        }),
    });
    ep.handle(Input::MbrshpView(pair_view(epoch, cid)));
    ep.poll();
}

#[test]
fn counters_track_the_protocol() {
    let mut ep = Endpoint::new(p(1), Config::default());
    assert_eq!(ep.stats(), Default::default());
    full_change(&mut ep, 1, 1);
    let s = ep.stats();
    assert_eq!(s.views_installed, 1);
    assert_eq!(s.blocks, 1);
    assert_eq!(s.syncs_sent, 1);
    assert_eq!(s.msgs_sent, 0);

    ep.handle(Input::AppSend(AppMsg::from("one")));
    ep.handle(Input::AppSend(AppMsg::from("two")));
    let effects = ep.poll();
    // Self-deliveries happen after the CO_RFIFO sends.
    let delivered = effects.iter().filter(|e| matches!(e, Effect::DeliverApp { .. })).count();
    let s = ep.stats();
    assert_eq!(s.msgs_sent, 2);
    assert_eq!(s.msgs_delivered as usize, delivered);
    assert_eq!(s.msgs_delivered, 2);

    full_change(&mut ep, 2, 2);
    let s = ep.stats();
    assert_eq!(s.views_installed, 2);
    assert_eq!(s.blocks, 2);
    assert_eq!(s.syncs_sent, 2);
}

#[test]
fn recovery_resets_counters() {
    let mut ep = Endpoint::new(p(1), Config::default());
    full_change(&mut ep, 1, 1);
    assert_ne!(ep.stats(), Default::default());
    ep.handle(Input::Crash);
    ep.handle(Input::Recover);
    assert_eq!(ep.stats(), Default::default());
}

#[test]
fn recovery_zeroes_every_counter_and_journals_the_reset() {
    use vsgm_obs::{ObsEvent, ObsRecorder};
    let mut ep = Endpoint::new(p(1), Config::default());
    let mut rec = ObsRecorder::new();
    full_change(&mut ep, 1, 1);
    ep.handle(Input::AppSend(AppMsg::from("pre-crash")));
    ep.poll();
    let s = ep.stats();
    assert!(s.views_installed >= 1 && s.msgs_sent >= 1 && s.syncs_sent >= 1);

    ep.handle_rec(Input::Crash, &mut rec);
    // Inputs while crashed are inert and must not disturb the counters.
    ep.handle(Input::AppSend(AppMsg::from("lost")));
    ep.handle_rec(Input::Recover, &mut rec);

    // §8: recovery restarts from the initial volatile state — every
    // counter field individually back at zero.
    let s = ep.stats();
    assert_eq!(s.views_installed, 0);
    assert_eq!(s.msgs_sent, 0);
    assert_eq!(s.msgs_delivered, 0);
    assert_eq!(s.syncs_sent, 0);
    assert_eq!(s.forwards_sent, 0);
    assert_eq!(s.blocks, 0);
    // The reset itself is journalled exactly once.
    assert_eq!(rec.journal().count(ObsEvent::RecoveryReset), 1);

    // Counting restarts from scratch after the reset.
    full_change(&mut ep, 2, 2);
    let s = ep.stats();
    assert_eq!(s.views_installed, 1);
    assert_eq!(s.syncs_sent, 1);
    assert_eq!(s.blocks, 1);
}

#[test]
fn wv_stack_counts_no_syncs_or_blocks() {
    let cfg = Config { stack: vsgm_core::Stack::Wv, ..Config::default() };
    let mut ep = Endpoint::new(p(1), cfg);
    ep.handle(Input::MbrshpView(pair_view(1, 1)));
    ep.poll();
    let s = ep.stats();
    assert_eq!(s.views_installed, 1);
    assert_eq!(s.syncs_sent, 0);
    assert_eq!(s.blocks, 0);
}

#[test]
fn journal_covers_block_and_forward_events() {
    use vsgm_obs::{ObsEvent, ObsRecorder};
    let mut ep = Endpoint::new(p(1), Config::default());
    let mut rec = ObsRecorder::new();

    // Move into the 3-member view {1,2,3}.
    let v3 = View::new(
        ViewId::new(1, 0),
        [p(1), p(2), p(3)],
        [
            (p(1), StartChangeId::new(1)),
            (p(2), StartChangeId::new(1)),
            (p(3), StartChangeId::new(1)),
        ],
    );
    ep.handle_rec(
        Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2, 3]) },
        &mut rec,
    );
    ep.poll_rec(&mut rec);
    ep.handle_rec(Input::BlockOk, &mut rec);
    ep.poll_rec(&mut rec);
    ep.handle_rec(Input::MbrshpView(v3.clone()), &mut rec);
    ep.poll_rec(&mut rec);
    assert_eq!(rec.journal().count(ObsEvent::ViewInstalled), 1);

    // p3's current-view stream: its view_msg plus one application
    // message, which p1 buffers (and p2 will turn out to miss).
    ep.handle_rec(Input::Net { from: p(3), msg: NetMsg::ViewMsg(v3.clone()) }, &mut rec);
    ep.handle_rec(Input::Net { from: p(3), msg: NetMsg::App(AppMsg::from("m1")) }, &mut rec);

    // A change to {1,2} starts (p3 partitioned away): the block handshake
    // runs and p1's sync commits to p3's message.
    ep.handle_rec(
        Input::StartChange { cid: StartChangeId::new(2), set: set(&[1, 2]) },
        &mut rec,
    );
    ep.poll_rec(&mut rec);
    ep.handle_rec(Input::BlockOk, &mut rec);
    ep.poll_rec(&mut rec);
    assert_eq!(rec.journal().count(ObsEvent::BlockOk), 2);
    assert_eq!(rec.journal().count(ObsEvent::SyncSent), 2);

    // p2's sync reveals it misses p3's message: the default eager
    // strategy forwards it, journalled as ForwardSent.
    let mut cut = Cut::new();
    cut.set(p(3), 0);
    ep.handle_rec(
        Input::Net {
            from: p(2),
            msg: NetMsg::Sync(SyncPayload {
                cid: StartChangeId::new(4),
                view: Some(v3.clone()),
                cut,
            }),
        },
        &mut rec,
    );
    ep.poll_rec(&mut rec);
    assert_eq!(rec.journal().count(ObsEvent::ForwardSent), 1, "eager forward of p3's m1");
}
