//! Property tests for the core message-buffer data structure (`MsgSeq`)
//! and the cut computation built on it.

use proptest::prelude::*;
use vsgm_core::state::{MsgSeq, State};
use vsgm_types::{AppMsg, ProcessId};

fn msg(k: u64) -> AppMsg {
    AppMsg::from(format!("m{k}").as_str())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Filling 1..=n in any order yields prefix n; any missing index caps
    /// the prefix just below the first gap.
    #[test]
    fn longest_prefix_is_first_gap(
        present in prop::collection::btree_set(1u64..40, 0..30),
    ) {
        let mut s = MsgSeq::default();
        for &i in &present {
            s.set(i, msg(i));
        }
        let expected = (1u64..).take_while(|i| present.contains(i)).count() as u64;
        prop_assert_eq!(s.longest_prefix(), expected);
        prop_assert_eq!(s.last_index(), present.iter().max().copied().unwrap_or(0));
    }

    /// set() then get() round-trips; get() outside is None.
    #[test]
    fn set_get_roundtrip(indices in prop::collection::vec(1u64..60, 0..40)) {
        let mut s = MsgSeq::default();
        for &i in &indices {
            s.set(i, msg(i));
        }
        for &i in &indices {
            prop_assert_eq!(s.get(i), Some(&msg(i)));
        }
        prop_assert_eq!(s.get(0), None);
        prop_assert_eq!(s.get(1000), None);
    }

    /// push() is equivalent to set() at successive indices.
    #[test]
    fn push_equals_sequential_set(n in 0u64..50) {
        let mut a = MsgSeq::default();
        let mut b = MsgSeq::default();
        for k in 1..=n {
            a.push(msg(k));
            b.set(k, msg(k));
        }
        prop_assert_eq!(a.longest_prefix(), b.longest_prefix());
        prop_assert_eq!(a.last_index(), b.last_index());
        for k in 1..=n {
            prop_assert_eq!(a.get(k), b.get(k));
        }
    }

    /// Overwriting an index with the same content is idempotent
    /// (forwarded duplicates — Invariant 6.6).
    #[test]
    fn idempotent_refill(indices in prop::collection::vec(1u64..30, 1..20)) {
        let mut s = MsgSeq::default();
        for &i in &indices {
            s.set(i, msg(i));
        }
        let before: Vec<_> = (1..=30).map(|i| s.get(i).cloned()).collect();
        for &i in &indices {
            s.set(i, msg(i)); // duplicate arrival
        }
        let after: Vec<_> = (1..=30).map(|i| s.get(i).cloned()).collect();
        prop_assert_eq!(before, after);
    }

    /// commit_cut is monotone under message arrival: receiving more never
    /// shrinks any component.
    #[test]
    fn commit_cut_monotone(
        first in prop::collection::vec(1u64..20, 0..10),
        second in prop::collection::vec(1u64..20, 0..10),
    ) {
        let me = ProcessId::new(1);
        let mut st = State::new(me);
        let view = st.current_view.clone();
        for &i in &first {
            st.buf_mut(me, &view).set(i, msg(i));
        }
        let before = st.commit_cut();
        for &i in &second {
            st.buf_mut(me, &view).set(i, msg(i));
        }
        let after = st.commit_cut();
        prop_assert!(before.dominated_by(&after), "{before:?} vs {after:?}");
    }
}
