//! Edge-case behavior of the end-point automaton: inputs arriving in odd
//! orders, stale and foreign traffic, and defensive handling the paper's
//! abstract automata take for granted.

use vsgm_core::{Action, Config, Effect, Endpoint, Input, Stack};
use vsgm_ioa::Automaton;
use vsgm_types::{
    AppMsg, Cut, FwdPayload, NetMsg, ProcSet, ProcessId, StartChangeId, SyncPayload, View, ViewId,
};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn set(ids: &[u64]) -> ProcSet {
    ids.iter().map(|&i| p(i)).collect()
}

fn view(epoch: u64, members: &[u64], cid: u64) -> View {
    View::new(
        ViewId::new(epoch, 0),
        members.iter().map(|&i| p(i)),
        members.iter().map(|&i| (p(i), StartChangeId::new(cid))),
    )
}

#[test]
fn app_msg_from_unknown_peer_is_buffered_not_fatal() {
    let mut ep = Endpoint::new(p(1), Config::default());
    // A message from p9, never seen before, with no preceding view_msg:
    // it lands in p9's initial-view buffer and stays inert.
    ep.handle(Input::Net { from: p(9), msg: NetMsg::App(AppMsg::from("stray")) });
    let effects = ep.poll();
    assert!(!effects.iter().any(|e| matches!(e, Effect::DeliverApp { .. })));
}

#[test]
fn fwd_msg_for_unknown_view_is_stored_inert() {
    let mut ep = Endpoint::new(p(1), Config::default());
    let foreign = view(7, &[2, 3], 9);
    ep.handle(Input::Net {
        from: p(2),
        msg: NetMsg::Fwd(FwdPayload {
            origin: p(3),
            view: foreign.clone(),
            index: 5,
            msg: AppMsg::from("future"),
        }),
    });
    assert!(ep.poll().iter().all(|e| !matches!(e, Effect::DeliverApp { .. })));
    assert!(ep.state().buf(p(3), &foreign).is_some());
}

#[test]
fn view_with_non_matching_start_id_blocks_installation_forever() {
    let mut ep = Endpoint::new(p(1), Config::default());
    ep.handle(Input::StartChange { cid: StartChangeId::new(2), set: set(&[1, 2]) });
    ep.poll();
    ep.handle(Input::BlockOk);
    ep.poll();
    // View claims cid 1 for us, but our pending change is cid 2.
    ep.handle(Input::MbrshpView(view(1, &[1, 2], 1)));
    ep.poll();
    assert!(ep.reconfiguring());
    assert!(ep.current_view().is_initial(), "obsolete view must not install");
}

#[test]
fn equal_view_id_is_not_installable() {
    let mut ep = Endpoint::new(p(1), Config::default());
    // mbrshp view with id equal to the current (initial) view id.
    let same_id = View::new(ViewId::ZERO, [p(1)], [(p(1), StartChangeId::new(1))]);
    ep.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1]) });
    ep.handle(Input::MbrshpView(same_id));
    ep.handle(Input::BlockOk);
    let effects = ep.poll();
    assert!(!effects.iter().any(|e| matches!(e, Effect::InstallView { .. })));
}

#[test]
fn sync_overwrite_keeps_latest_per_cid() {
    let mut ep = Endpoint::new(p(1), Config::default());
    let mk = |n: u64| {
        NetMsg::Sync(SyncPayload {
            cid: StartChangeId::new(1),
            view: Some(View::initial(p(2))),
            cut: Cut::from_iter([(p(2), n)]),
        })
    };
    ep.handle(Input::Net { from: p(2), msg: mk(1) });
    ep.handle(Input::Net { from: p(2), msg: mk(4) });
    assert_eq!(
        ep.state().sync(p(2), StartChangeId::new(1)).unwrap().cut.get(p(2)),
        4,
        "later record for the same cid wins"
    );
}

#[test]
fn block_ok_without_block_is_harmless_for_wv_stack() {
    let cfg = Config { stack: Stack::Wv, ..Config::default() };
    let mut ep = Endpoint::new(p(1), cfg);
    ep.handle(Input::BlockOk); // no SD layer: ignored entirely
    assert!(ep.poll().is_empty());
}

#[test]
fn actions_disabled_after_crash_enabled_after_recover() {
    let mut ep = Endpoint::new(p(1), Config::default());
    ep.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2]) });
    assert!(!ep.enabled_actions().is_empty());
    ep.handle(Input::Crash);
    assert!(ep.enabled_actions().is_empty());
    // Inputs while crashed have no effect.
    ep.handle(Input::AppSend(AppMsg::from("void")));
    ep.handle(Input::MbrshpView(view(3, &[1], 3)));
    assert!(ep.enabled_actions().is_empty());
    ep.handle(Input::Recover);
    // Fresh state: the old start_change is gone, initial view back.
    assert!(!ep.reconfiguring());
    assert!(ep.current_view().is_initial());
}

#[test]
fn canonical_action_order_is_stable() {
    // SetReliable must come first so the sync (which requires reliable
    // coverage) can follow within one poll; Block before SendSyncMsg's
    // effects need the handshake.
    let mut ep = Endpoint::new(p(1), Config::default());
    ep.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2, 3]) });
    let actions = ep.enabled_actions();
    assert_eq!(actions.first(), Some(&Action::SetReliable), "{actions:?}");
    let effects = ep.poll();
    // One poll carries the whole local phase: reliable + block.
    assert!(effects.iter().any(|e| matches!(e, Effect::SetReliable(_))));
    assert!(effects.iter().any(|e| matches!(e, Effect::Block)));
    // Sync still withheld (no block_ok yet).
    assert!(!effects.iter().any(|e| matches!(e, Effect::NetSend { msg: NetMsg::Sync(_), .. })));
}

#[test]
fn repeated_identical_start_change_is_idempotent_protocolwise() {
    let mut a = Endpoint::new(p(1), Config::default());
    a.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2]) });
    a.poll();
    a.handle(Input::BlockOk);
    let first = a.poll();
    let syncs = first
        .iter()
        .filter(|e| matches!(e, Effect::NetSend { msg: NetMsg::Sync(_), .. }))
        .count();
    assert_eq!(syncs, 1);
    // Replaying the same cid (allowed nowhere by the spec, but defensive):
    // no second sync for the same cid.
    a.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2]) });
    let again = a.poll();
    assert!(
        !again.iter().any(|e| matches!(e, Effect::NetSend { msg: NetMsg::Sync(_), .. })),
        "{again:?}"
    );
}

#[test]
fn cascaded_start_change_produces_fresh_sync() {
    let mut a = Endpoint::new(p(1), Config::default());
    a.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2]) });
    a.poll();
    a.handle(Input::BlockOk);
    a.poll();
    a.handle(Input::StartChange { cid: StartChangeId::new(2), set: set(&[1, 2, 3]) });
    let effects = a.poll();
    let sync_cids: Vec<StartChangeId> = effects
        .iter()
        .filter_map(|e| match e {
            Effect::NetSend { msg: NetMsg::Sync(s), .. } => Some(s.cid),
            _ => None,
        })
        .collect();
    assert_eq!(sync_cids, vec![StartChangeId::new(2)]);
    // Both own records exist (old one retained for late view selection).
    assert!(a.state().sync(p(1), StartChangeId::new(1)).is_some());
    assert!(a.state().sync(p(1), StartChangeId::new(2)).is_some());
}

#[test]
fn send_view_msg_only_after_reliable_covers_view() {
    let mut a = Endpoint::new(p(1), Config::default());
    a.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2]) });
    a.handle(Input::BlockOk);
    a.poll();
    a.handle(Input::Net {
        from: p(2),
        msg: NetMsg::Sync(SyncPayload {
            cid: StartChangeId::new(1),
            view: Some(View::initial(p(2))),
            cut: Cut::new(),
        }),
    });
    a.handle(Input::MbrshpView(view(1, &[1, 2], 1)));
    let effects = a.poll();
    // view_msg must appear, and only after a SetReliable covering {1,2}.
    let reliable_pos = effects
        .iter()
        .position(|e| matches!(e, Effect::SetReliable(s) if s.contains(&p(2))));
    let viewmsg_pos = effects
        .iter()
        .position(|e| matches!(e, Effect::NetSend { msg: NetMsg::ViewMsg(_), .. }));
    match (reliable_pos, viewmsg_pos) {
        (Some(r), Some(v)) => assert!(r < v, "{effects:?}"),
        // reliable may have been set in an earlier poll; view_msg present
        // is the essential part.
        (None, Some(_)) => {}
        other => panic!("missing view_msg announcement: {other:?} in {effects:?}"),
    }
}

#[test]
fn gcs_view_effect_carries_transitional_set() {
    let mut a = Endpoint::new(p(1), Config::default());
    a.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1, 2]) });
    a.poll();
    a.handle(Input::BlockOk);
    a.poll();
    a.handle(Input::Net {
        from: p(2),
        msg: NetMsg::Sync(SyncPayload {
            cid: StartChangeId::new(1),
            view: Some(View::initial(p(2))),
            cut: Cut::new(),
        }),
    });
    a.handle(Input::MbrshpView(view(1, &[1, 2], 1)));
    let effects = a.poll();
    let t = effects.iter().find_map(|e| match e {
        Effect::InstallView { transitional, .. } => Some(transitional.clone()),
        _ => None,
    });
    // p2 moved from ITS initial view, not ours: T = {p1}.
    assert_eq!(t, Some(set(&[1])));
}
