//! Garbage collection and memory-boundedness: the paper notes that "any
//! actual implementation of the algorithm needs to employ some sort of a
//! garbage collection mechanism for discarding old messages." The
//! end-point keeps the current and previous view generations (the
//! previous one because forwarding duties may still be pending) and drops
//! everything older on view installation.

use vsgm_core::{Config, Endpoint, Input};
use vsgm_types::{AppMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn members() -> ProcSet {
    [p(1), p(2)].into_iter().collect()
}

fn view(epoch: u64, cid: u64) -> View {
    View::new(
        ViewId::new(epoch, 0),
        members(),
        members().iter().map(|&m| (m, StartChangeId::new(cid))),
    )
}

/// Drives two endpoints through one reconfiguration by direct message
/// routing.
fn reconfigure(a: &mut Endpoint, b: &mut Endpoint, epoch: u64, cid: u64) {
    let v = view(epoch, cid);
    for ep in [&mut *a, &mut *b] {
        ep.handle(Input::StartChange { cid: StartChangeId::new(cid), set: members() });
        ep.handle(Input::MbrshpView(v.clone()));
    }
    // Exchange until quiescent.
    for _ in 0..50 {
        let mut traffic = Vec::new();
        for (me, ep) in [(p(1), &mut *a), (p(2), &mut *b)] {
            let mut effects = ep.handle(Input::BlockOk);
            effects.extend(ep.poll());
            for e in effects {
                if let vsgm_core::Effect::NetSend { to, msg } = e {
                    traffic.push((me, to, msg));
                }
            }
        }
        if traffic.is_empty() {
            break;
        }
        for (from, to, msg) in traffic {
            for (me, ep) in [(p(1), &mut *a), (p(2), &mut *b)] {
                if to.contains(&me) && me != from {
                    ep.handle(Input::Net { from, msg: msg.clone() });
                }
            }
        }
    }
    a.poll();
    b.poll();
}

#[test]
fn buffers_bounded_across_many_view_changes() {
    let mut a = Endpoint::new(p(1), Config::default());
    let mut b = Endpoint::new(p(2), Config::default());
    let mut max_buffers = 0usize;
    let mut max_syncs = 0usize;
    for round in 1..=50u64 {
        reconfigure(&mut a, &mut b, round, round);
        assert_eq!(a.current_view().id().epoch, round, "round {round} installed");
        // Traffic every round so buffers would grow without GC.
        a.handle(Input::AppSend(AppMsg::from(format!("r{round}").as_str())));
        a.poll();
        max_buffers = max_buffers.max(a.state().msgs.len()).max(b.state().msgs.len());
        max_syncs = max_syncs.max(a.state().sync_msgs.len()).max(b.state().sync_msgs.len());
    }
    // Current + previous generation only: a handful of (sender, view)
    // buffers and sync records, regardless of 50 view changes.
    assert!(max_buffers <= 8, "msgs buffers grew unbounded: {max_buffers}");
    assert!(max_syncs <= 8, "sync records grew unbounded: {max_syncs}");
}

#[test]
fn gc_keeps_previous_generation_for_forwarding() {
    let mut a = Endpoint::new(p(1), Config::default());
    let mut b = Endpoint::new(p(2), Config::default());
    reconfigure(&mut a, &mut b, 1, 1);
    let v1 = a.current_view().clone();
    a.handle(Input::AppSend(AppMsg::from("kept")));
    a.poll();
    reconfigure(&mut a, &mut b, 2, 2);
    // The previous view's buffer survives one generation...
    assert!(
        a.state().buf(p(1), &v1).is_some(),
        "previous-generation buffer must be retained for forwarding"
    );
    reconfigure(&mut a, &mut b, 3, 3);
    // ...and is collected after the next.
    assert!(
        a.state().buf(p(1), &v1).is_none(),
        "buffers two generations old must be collected"
    );
}

#[test]
fn gc_disabled_retains_everything() {
    let cfg = Config { gc_old_views: false, ..Config::default() };
    let mut a = Endpoint::new(p(1), cfg.clone());
    let mut b = Endpoint::new(p(2), cfg);
    for round in 1..=10u64 {
        reconfigure(&mut a, &mut b, round, round);
        a.handle(Input::AppSend(AppMsg::from("x")));
        a.poll();
    }
    // Without GC the per-view buffers accumulate (the paper's abstract
    // automaton behavior).
    assert!(a.state().msgs.len() >= 9, "expected unbounded growth, got {}", a.state().msgs.len());
}

#[test]
fn forwarded_set_pruned_with_buffers() {
    let mut a = Endpoint::new(p(1), Config::default());
    let mut b = Endpoint::new(p(2), Config::default());
    for round in 1..=10u64 {
        reconfigure(&mut a, &mut b, round, round);
    }
    assert!(a.state().forwarded.len() <= 4, "forwarded set must not leak");
}
