//! Direct unit tests of the implicit-cuts (§5.2.4, second optimization)
//! agreement logic: the delivery bound and view restriction derived from
//! in-stream sync positions rather than wire cut entries.

use vsgm_core::state::State;
use vsgm_core::{vs, wv};
use vsgm_types::{
    AppMsg, Cut, ProcSet, ProcessId, StartChangeId, SyncPayload, View, ViewId,
};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn set(ids: &[u64]) -> ProcSet {
    ids.iter().map(|&i| p(i)).collect()
}

fn view(epoch: u64, members: &[u64], cids: &[u64]) -> View {
    View::new(
        ViewId::new(epoch, 0),
        members.iter().map(|&i| p(i)),
        members.iter().zip(cids).map(|(&m, &c)| (p(m), StartChangeId::new(c))),
    )
}

/// p1 in view {1,2}, announced, change pending with cid 2.
fn base_state() -> State {
    let mut st = State::new(p(1));
    st.mbrshp_view = view(1, &[1, 2], &[1, 1]);
    wv::view_eff(&mut st);
    st.reliable_set = set(&[1, 2]);
    st.view_msg.insert(p(1), st.current_view.clone());
    vs::on_start_change(&mut st, StartChangeId::new(2), set(&[1, 2]));
    st
}

#[test]
fn implicit_pre_requires_stream_flushed() {
    let mut st = base_state();
    // An unsent buffered own message blocks the implicit-mode sync…
    wv::on_app_send(&mut st, AppMsg::from("pending"));
    assert!(vs::send_sync_pre(&st, false), "plain mode unaffected");
    assert!(
        !vs::send_sync_pre(&st, true),
        "implicit mode must flush the stream before syncing"
    );
    // …until it is multicast.
    st.last_sent = 1;
    assert!(vs::send_sync_pre(&st, true));
}

#[test]
fn implicit_pre_requires_view_announced() {
    let mut st = base_state();
    st.view_msg.remove(&p(1)); // view not announced
    assert!(
        !vs::send_sync_pre(&st, true),
        "stream markers are meaningless before the view_msg delimiter"
    );
}

#[test]
fn wire_cut_omits_continuing_members_only() {
    let mut st = base_state();
    // Traffic from both members + a departed p3's buffered messages.
    let cv0 = st.current_view.clone();
    wv::on_view_msg(&mut st, p(2), cv0);
    wv::on_app_msg(&mut st, p(2), AppMsg::from("a"));
    wv::on_app_send(&mut st, AppMsg::from("own"));
    st.last_sent = 1;
    // p3 is in the current view but NOT in start_change.set (departed):
    // rebuild the state with a 3-member view to exercise the filter.
    let mut st = State::new(p(1));
    st.mbrshp_view = view(1, &[1, 2, 3], &[1, 1, 1]);
    wv::view_eff(&mut st);
    st.reliable_set = set(&[1, 2, 3]);
    st.view_msg.insert(p(1), st.current_view.clone());
    let cv = st.current_view.clone();
    wv::on_view_msg(&mut st, p(3), cv);
    wv::on_app_msg(&mut st, p(3), AppMsg::from("departed's msg"));
    vs::on_start_change(&mut st, StartChangeId::new(2), set(&[1, 2]));
    let plan = vs::send_sync_eff(&mut st, false, false, true).expect("sync enabled");
    let wire_cut = match &plan.sends[0].1 {
        vsgm_types::NetMsg::Sync(s) => s.cut.clone(),
        other => panic!("expected sync, got {other:?}"),
    };
    // p3 (departed) entry travels; p1/p2 (continuing) entries elided.
    assert_eq!(wire_cut.get(p(3)), 1);
    assert_eq!(wire_cut.len(), 1, "{wire_cut:?}");
    // The LOCAL record keeps the full cut for own-bound checks.
    assert_eq!(plan.record.cut.len(), 3);
}

#[test]
fn agreed_bound_uses_stream_position_for_continuing_members() {
    let mut st = base_state();
    let _ = vs::send_sync_eff(&mut st, false, false, true).expect("sync enabled");
    // p2's stream: view_msg, two app messages, then its sync — so its
    // in-stream position is 2.
    let cv0 = st.current_view.clone();
    wv::on_view_msg(&mut st, p(2), cv0);
    wv::on_app_msg(&mut st, p(2), AppMsg::from("m1"));
    wv::on_app_msg(&mut st, p(2), AppMsg::from("m2"));
    let cv = st.current_view.clone();
    vs::on_sync(
        &mut st,
        p(2),
        &SyncPayload {
            cid: StartChangeId::new(5),
            view: Some(cv),
            cut: Cut::new(), // wire cut empty under implicit mode
        },
    );
    st.mbrshp_view = view(2, &[1, 2], &[2, 5]);
    // Implicit bound for p2 = its stream position (2), despite the empty
    // wire cut; plain mode would read 0.
    assert_eq!(vs::delivery_bound_with(&st, p(2), true), Some(2));
    assert_eq!(vs::delivery_bound_with(&st, p(2), false), Some(0));
}

#[test]
fn view_restriction_with_implicit_requires_stream_caught_up() {
    let mut st = base_state();
    let _ = vs::send_sync_eff(&mut st, false, false, true).expect("sync enabled");
    let cv = st.current_view.clone();
    wv::on_view_msg(&mut st, p(2), cv.clone());
    wv::on_app_msg(&mut st, p(2), AppMsg::from("m1"));
    vs::on_sync(
        &mut st,
        p(2),
        &SyncPayload { cid: StartChangeId::new(5), view: Some(cv), cut: Cut::new() },
    );
    st.mbrshp_view = view(2, &[1, 2], &[2, 5]);
    // One message from p2 is agreed (stream position 1) but not yet
    // delivered: the view must not install.
    assert!(vs::view_restriction_with(&st, true).is_none());
    wv::deliver_eff(&mut st, p(2));
    let t = vs::view_restriction_with(&st, true).expect("installable after catch-up");
    assert_eq!(t, set(&[1, 2]));
}

#[test]
fn recovered_member_with_foreign_sync_view_contributes_zero() {
    // A member whose selected sync shows a different previous view (e.g.
    // a fresh incarnation) has no agreed current-view stream: bound 0.
    let mut st = base_state();
    let _ = vs::send_sync_eff(&mut st, false, false, true).expect("sync enabled");
    vs::on_sync(
        &mut st,
        p(2),
        &SyncPayload {
            cid: StartChangeId::new(5),
            view: Some(View::initial(p(2))), // not our current view
            cut: Cut::new(),
        },
    );
    st.mbrshp_view = view(2, &[1, 2], &[2, 5]);
    assert_eq!(vs::delivery_bound_with(&st, p(2), true), Some(0));
}
