//! Core types for the **vsgm** (virtually synchronous group multicast) stack.
//!
//! This crate transcribes the vocabulary of Keidar & Khazan, *"A
//! Client-Server Approach to Virtually Synchronous Group Multicast"*
//! (ICDCS 2000) into Rust types shared by every other crate in the
//! workspace:
//!
//! * [`ProcessId`], [`ViewId`], [`StartChangeId`] — the identifier sets of
//!   the paper (§3.1). `StartChangeId` is totally ordered with smallest
//!   element [`StartChangeId::ZERO`] (the paper's `cid₀`); `ViewId` is
//!   ordered with smallest element [`ViewId::ZERO`] (`vid₀`).
//! * [`View`] — the membership view triple `⟨id, set, startId⟩` of Fig. 2.
//!   Two views are *the same* only if all three components are identical
//!   ([`View::same_view`], which is also its `PartialEq`).
//! * [`AppMsg`], [`NetMsg`], [`SyncPayload`] — application payloads and the
//!   tagged wire messages (`view_msg`, `app_msg`, `fwd_msg`, `sync_msg`)
//!   exchanged between end-points over the `CO_RFIFO` substrate (Fig. 9/10).
//! * [`Cut`] — a map from processes to message indices: the set of messages
//!   an end-point commits to deliver before installing the next view (§5.2).
//! * [`event::Event`] — the externally observable actions of the composed
//!   system, used by the spec checkers in `vsgm-spec` to validate traces.
//!
//! # Example
//!
//! ```
//! use vsgm_types::{ProcessId, View, ViewId, StartChangeId};
//!
//! let p = ProcessId::new(1);
//! let initial = View::initial(p);
//! assert!(initial.contains(p));
//! assert_eq!(initial.start_id(p), Some(StartChangeId::ZERO));
//! assert_eq!(initial.id(), ViewId::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cut;
pub mod event;
pub mod ids;
pub mod message;
pub mod view;

pub use cut::Cut;
pub use event::Event;
pub use ids::{GroupId, ProcessId, StartChangeId, ViewId};
pub use message::{AppMsg, BaselineMsg, FwdPayload, MsgIndex, NetMsg, SyncPayload};
pub use view::View;

/// Convenience alias for an ordered set of processes, as used throughout the
/// paper for view member sets and `start_change` suggestion sets.
pub type ProcSet = std::collections::BTreeSet<ProcessId>;
