//! Identifier newtypes: processes, views, and start-change ids.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a process / GCS end-point (the paper's `Proc`).
///
/// Process identifiers are totally ordered; the paper's deterministic
/// `min` selection in the min-copy forwarding strategy (§5.2.2) relies on
/// this order.
///
/// ```
/// use vsgm_types::ProcessId;
/// let a = ProcessId::new(3);
/// let b = ProcessId::new(7);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "p3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ProcessId(u64);

impl ProcessId {
    /// Creates a process id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        ProcessId(raw)
    }

    /// Returns the raw integer identity.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for ProcessId {
    fn from(raw: u64) -> Self {
        ProcessId(raw)
    }
}

/// A view identifier (the paper's `ViewId`, smallest element `vid₀`).
///
/// The paper only requires a partial order; we use a total order on a pair
/// `(epoch, proposer)` so that views formed concurrently by different
/// membership servers in different partitions still get distinct,
/// comparable identifiers and *Local Monotonicity* (Fig. 2) can be enforced
/// with a plain `>` comparison.
///
/// ```
/// use vsgm_types::ViewId;
/// let v1 = ViewId::new(1, 0);
/// let v2 = ViewId::new(2, 0);
/// assert!(ViewId::ZERO < v1 && v1 < v2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ViewId {
    /// Monotone epoch counter (major component).
    pub epoch: u64,
    /// Tie-breaker identifying the proposer of the view (minor component).
    pub proposer: u64,
}

impl ViewId {
    /// The smallest view identifier, the paper's `vid₀`; identifies every
    /// process's initial singleton view.
    pub const ZERO: ViewId = ViewId { epoch: 0, proposer: 0 };

    /// Creates a view identifier from an epoch and a proposer tie-breaker.
    pub const fn new(epoch: u64, proposer: u64) -> Self {
        ViewId { epoch, proposer }
    }

    /// The successor identifier proposed by `proposer`: epoch is bumped,
    /// so the result is strictly greater than `self` regardless of the
    /// proposer component.
    #[must_use]
    pub const fn successor(self, proposer: u64) -> Self {
        ViewId { epoch: self.epoch + 1, proposer }
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}.{}", self.epoch, self.proposer)
    }
}

/// Identity of a hosted multicast group on a multi-group server.
///
/// The paper's protocol is specified for one group; a production
/// client-server deployment (§3) multiplexes many independent group
/// instances over one shared transport. `GroupId` names one such
/// instance: wire frames carry it in the group envelope
/// (`vsgm-net`'s codec, version byte `0x02`), and the server shards
/// protocol state by `gid → shard` so groups never contend.
///
/// ```
/// use vsgm_types::GroupId;
/// let g = GroupId::new(7);
/// assert_eq!(g.raw(), 7);
/// assert_eq!(g.to_string(), "g7");
/// assert!(GroupId::DIRECTORY < g);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct GroupId(u64);

impl GroupId {
    /// The reserved control-plane group: frames enveloped to it carry
    /// directory requests (create/join/lookup/leave), never protocol
    /// traffic. Real groups get identifiers starting at 1.
    pub const DIRECTORY: GroupId = GroupId(0);

    /// Creates a group id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        GroupId(raw)
    }

    /// Returns the raw integer identity.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u64> for GroupId {
    fn from(raw: u64) -> Self {
        GroupId(raw)
    }
}

/// A start-change identifier (the paper's `StartChangeId`).
///
/// Start-change identifiers are *locally* unique and increasing per
/// end-point (§3.1); they are **not** globally agreed upon — that is the
/// paper's central trick. The smallest element is [`StartChangeId::ZERO`]
/// (`cid₀`), carried by every initial view.
///
/// ```
/// use vsgm_types::StartChangeId;
/// let c = StartChangeId::ZERO.next();
/// assert!(c > StartChangeId::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct StartChangeId(u64);

impl StartChangeId {
    /// The smallest start-change identifier, the paper's `cid₀`.
    pub const ZERO: StartChangeId = StartChangeId(0);

    /// Creates a start-change identifier from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        StartChangeId(raw)
    }

    /// Returns the raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next (strictly larger) identifier.
    #[must_use]
    pub const fn next(self) -> Self {
        StartChangeId(self.0 + 1)
    }
}

impl fmt::Display for StartChangeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip_and_order() {
        let a = ProcessId::new(1);
        let b = ProcessId::from(2);
        assert!(a < b);
        assert_eq!(a.raw(), 1);
        assert_eq!(format!("{a}"), "p1");
    }

    #[test]
    fn view_id_zero_is_smallest() {
        assert!(ViewId::ZERO <= ViewId::new(0, 0));
        assert!(ViewId::ZERO < ViewId::new(0, 1));
        assert!(ViewId::ZERO < ViewId::new(1, 0));
    }

    #[test]
    fn view_id_successor_strictly_larger_any_proposer() {
        let v = ViewId::new(5, 9);
        assert!(v.successor(0) > v);
        assert!(v.successor(100) > v);
        assert_eq!(v.successor(3).epoch, 6);
    }

    #[test]
    fn view_id_order_is_lexicographic() {
        assert!(ViewId::new(1, 5) < ViewId::new(2, 0));
        assert!(ViewId::new(2, 0) < ViewId::new(2, 1));
    }

    #[test]
    fn start_change_id_next_is_monotone() {
        let mut c = StartChangeId::ZERO;
        for _ in 0..10 {
            let n = c.next();
            assert!(n > c);
            c = n;
        }
        assert_eq!(c.raw(), 10);
    }

    #[test]
    fn ids_serde_roundtrip() {
        let v = ViewId::new(3, 2);
        let s = serde_json::to_string(&v).unwrap();
        assert_eq!(serde_json::from_str::<ViewId>(&s).unwrap(), v);
        let c = StartChangeId::new(7);
        let s = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<StartChangeId>(&s).unwrap(), c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ViewId::new(2, 1).to_string(), "v2.1");
        assert_eq!(StartChangeId::new(4).to_string(), "c4");
        assert_eq!(GroupId::new(9).to_string(), "g9");
    }

    #[test]
    fn group_id_directory_is_reserved_and_smallest() {
        assert_eq!(GroupId::DIRECTORY.raw(), 0);
        assert!(GroupId::DIRECTORY < GroupId::new(1));
        let g = GroupId::from(3u64);
        assert_eq!(g, GroupId::new(3));
        let s = serde_json::to_string(&g).unwrap();
        assert_eq!(s, "3", "transparent serde form");
        assert_eq!(serde_json::from_str::<GroupId>(&s).unwrap(), g);
    }
}
