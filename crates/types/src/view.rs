//! Membership views (Fig. 2: `Type View: ViewId × SetOf(Proc) × (Proc → StartChangeId)`).

use crate::ids::{ProcessId, StartChangeId, ViewId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A membership view: the triple `⟨id, set, startId⟩` delivered by the
/// membership service (Fig. 2).
///
/// * `id` — an increasing view identifier.
/// * `set` — the processes believed alive and mutually connected.
/// * `startId` — maps each member to the identifier of the **last**
///   `start_change` it received before receiving this view. This map is
///   what lets the virtual-synchrony algorithm pick the right
///   synchronization message from each peer without any globally
///   pre-agreed tag (§5.2).
///
/// Per the paper, *"two views are considered to be the same if they consist
/// of identical triples"* — `PartialEq`/`Hash` compare all three
/// components.
///
/// Views are internally reference-counted ([`Arc`]); cloning is cheap, so
/// they can be freely embedded in wire messages and per-sender bookkeeping.
///
/// ```
/// use vsgm_types::{ProcessId, StartChangeId, View, ViewId};
///
/// let p = ProcessId::new(1);
/// let q = ProcessId::new(2);
/// let v = View::new(
///     ViewId::new(1, 0),
///     [p, q],
///     [(p, StartChangeId::new(1)), (q, StartChangeId::new(4))],
/// );
/// assert!(v.contains(p));
/// assert_eq!(v.start_id(q), Some(StartChangeId::new(4)));
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct View {
    inner: Arc<ViewInner>,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
struct ViewInner {
    id: ViewId,
    members: BTreeSet<ProcessId>,
    start_ids: BTreeMap<ProcessId, StartChangeId>,
}

impl View {
    /// Creates a view from its three components.
    ///
    /// # Panics
    ///
    /// Panics if the key set of `start_ids` differs from `members`:
    /// Fig. 2 requires `startId` to be defined exactly on the view's
    /// member set.
    pub fn new(
        id: ViewId,
        members: impl IntoIterator<Item = ProcessId>,
        start_ids: impl IntoIterator<Item = (ProcessId, StartChangeId)>,
    ) -> Self {
        let members: BTreeSet<ProcessId> = members.into_iter().collect();
        let start_ids: BTreeMap<ProcessId, StartChangeId> = start_ids.into_iter().collect();
        assert!(
            members.iter().eq(start_ids.keys()),
            "startId map must be defined exactly on the member set \
             (members {members:?}, startId keys {:?})",
            start_ids.keys().collect::<Vec<_>>(),
        );
        View { inner: Arc::new(ViewInner { id, members, start_ids }) }
    }

    /// The default initial view of process `p`: `⟨vid₀, {p}, {p → cid₀}⟩`
    /// (Fig. 2, initial state).
    pub fn initial(p: ProcessId) -> Self {
        View::new(ViewId::ZERO, [p], [(p, StartChangeId::ZERO)])
    }

    /// The view identifier (`v.id`).
    pub fn id(&self) -> ViewId {
        self.inner.id
    }

    /// The member set (`v.set`).
    pub fn members(&self) -> &BTreeSet<ProcessId> {
        &self.inner.members
    }

    /// Whether `p ∈ v.set`.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.inner.members.contains(&p)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.inner.members.len()
    }

    /// Whether the member set is empty (never true for well-formed views,
    /// which satisfy Self Inclusion at their recipient).
    pub fn is_empty(&self) -> bool {
        self.inner.members.is_empty()
    }

    /// `v.startId(p)`: the start-change identifier recorded for member `p`,
    /// or `None` if `p ∉ v.set`.
    pub fn start_id(&self, p: ProcessId) -> Option<StartChangeId> {
        self.inner.start_ids.get(&p).copied()
    }

    /// The full `startId` map.
    pub fn start_ids(&self) -> &BTreeMap<ProcessId, StartChangeId> {
        &self.inner.start_ids
    }

    /// Whether this is an initial (`vid₀`) view.
    pub fn is_initial(&self) -> bool {
        self.inner.id == ViewId::ZERO
    }

    /// Paper equality: identical triples. (Same as `==`; provided for
    /// call-site readability where the distinction matters.)
    pub fn same_view(&self, other: &View) -> bool {
        self == other
    }

    /// Iterates over `self.set ∩ other.set`, the candidate transitional-set
    /// members when moving between the two views (§4.1.3).
    pub fn intersection<'a>(&'a self, other: &'a View) -> impl Iterator<Item = ProcessId> + 'a {
        self.inner.members.intersection(&other.inner.members).copied()
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "View({}, {{", self.inner.id)?;
        for (i, m) in self.inner.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match self.inner.start_ids.get(m) {
                Some(cid) => write!(f, "{m}:{cid}")?,
                None => write!(f, "{m}:?")?,
            }
        }
        write!(f, "}})")
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initial_view_shape() {
        let v = View::initial(p(3));
        assert_eq!(v.id(), ViewId::ZERO);
        assert_eq!(v.len(), 1);
        assert!(v.contains(p(3)));
        assert_eq!(v.start_id(p(3)), Some(StartChangeId::ZERO));
        assert!(v.is_initial());
    }

    #[test]
    fn start_id_absent_for_non_member() {
        let v = View::initial(p(1));
        assert_eq!(v.start_id(p(2)), None);
    }

    #[test]
    #[should_panic(expected = "startId map must be defined exactly")]
    fn mismatched_start_ids_panic() {
        let _ = View::new(ViewId::new(1, 0), [p(1), p(2)], [(p(1), StartChangeId::ZERO)]);
    }

    #[test]
    fn equality_is_triple_equality() {
        let a = View::new(
            ViewId::new(1, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(1)), (p(2), StartChangeId::new(1))],
        );
        let b = View::new(
            ViewId::new(1, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(1)), (p(2), StartChangeId::new(1))],
        );
        // Same id and set but different startId map ⇒ different view.
        let c = View::new(
            ViewId::new(1, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(2)), (p(2), StartChangeId::new(1))],
        );
        assert_eq!(a, b);
        assert!(a.same_view(&b));
        assert_ne!(a, c);
    }

    #[test]
    fn intersection_lists_common_members() {
        let a = View::new(
            ViewId::new(1, 0),
            [p(1), p(2), p(3)],
            [
                (p(1), StartChangeId::ZERO),
                (p(2), StartChangeId::ZERO),
                (p(3), StartChangeId::ZERO),
            ],
        );
        let b = View::new(
            ViewId::new(2, 0),
            [p(2), p(3), p(4)],
            [
                (p(2), StartChangeId::ZERO),
                (p(3), StartChangeId::ZERO),
                (p(4), StartChangeId::ZERO),
            ],
        );
        let inter: Vec<_> = a.intersection(&b).collect();
        assert_eq!(inter, vec![p(2), p(3)]);
    }

    #[test]
    fn serde_roundtrip() {
        let v = View::new(
            ViewId::new(4, 1),
            [p(1), p(9)],
            [(p(1), StartChangeId::new(2)), (p(9), StartChangeId::new(5))],
        );
        let s = serde_json::to_string(&v).unwrap();
        let back: View = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn debug_format_is_informative() {
        let v = View::initial(p(7));
        let d = format!("{v:?}");
        assert!(d.contains("p7"), "{d}");
        assert!(d.contains("v0.0"), "{d}");
    }
}
