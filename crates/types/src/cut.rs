//! Delivery cuts: per-sender committed message indices (§4.1.2, §5.2).

use crate::ids::ProcessId;
use crate::message::MsgIndex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A *cut*: a map from processes to 1-based message indices.
///
/// `cut.get(q) = i` means "the first `i` messages sent by `q` in the
/// relevant view". Cuts appear in two roles:
///
/// * inside synchronization messages, as the set of messages the sender
///   commits to deliver before the next view (Fig. 10), and
/// * in the `VS_RFIFO:SPEC` automaton, as the agreed set of messages every
///   process moving from view `v` to `v'` must deliver (Fig. 5).
///
/// Absent keys are read as 0 ("no messages from that sender").
///
/// ```
/// use vsgm_types::{Cut, ProcessId};
/// let p = ProcessId::new(1);
/// let mut c = Cut::default();
/// c.set(p, 4);
/// assert_eq!(c.get(p), 4);
/// assert_eq!(c.get(ProcessId::new(9)), 0);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cut {
    indices: BTreeMap<ProcessId, MsgIndex>,
}

impl Cut {
    /// Creates an empty cut (everything 0).
    pub fn new() -> Self {
        Cut::default()
    }

    /// The committed index for `q` (0 if absent).
    pub fn get(&self, q: ProcessId) -> MsgIndex {
        self.indices.get(&q).copied().unwrap_or(0)
    }

    /// Sets the committed index for `q`.
    pub fn set(&mut self, q: ProcessId, index: MsgIndex) {
        self.indices.insert(q, index);
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the cut has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterates over the explicit `(process, index)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, MsgIndex)> + '_ {
        self.indices.iter().map(|(p, i)| (*p, *i))
    }

    /// Pointwise maximum with another cut, in place. Used to compute
    /// `max_{r∈T} sync_msg[r].cut(q)` — the agreed delivery set over the
    /// transitional set `T` (Fig. 10, `view` precondition).
    pub fn join(&mut self, other: &Cut) {
        for (p, i) in other.iter() {
            let e = self.indices.entry(p).or_insert(0);
            *e = (*e).max(i);
        }
    }

    /// Pointwise maximum over any number of cuts.
    ///
    /// ```
    /// use vsgm_types::{Cut, ProcessId};
    /// let p = ProcessId::new(1);
    /// let a = Cut::from_iter([(p, 3)]);
    /// let b = Cut::from_iter([(p, 5)]);
    /// assert_eq!(Cut::join_all([&a, &b]).get(p), 5);
    /// ```
    pub fn join_all<'a>(cuts: impl IntoIterator<Item = &'a Cut>) -> Cut {
        let mut out = Cut::new();
        for c in cuts {
            out.join(c);
        }
        out
    }

    /// Whether this cut is pointwise ≤ `other` (over the union of keys).
    pub fn dominated_by(&self, other: &Cut) -> bool {
        self.iter().all(|(p, i)| i <= other.get(p))
    }
}

impl FromIterator<(ProcessId, MsgIndex)> for Cut {
    fn from_iter<T: IntoIterator<Item = (ProcessId, MsgIndex)>>(iter: T) -> Self {
        Cut { indices: iter.into_iter().collect() }
    }
}

impl Extend<(ProcessId, MsgIndex)> for Cut {
    fn extend<T: IntoIterator<Item = (ProcessId, MsgIndex)>>(&mut self, iter: T) {
        self.indices.extend(iter);
    }
}

impl fmt::Debug for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cut{{")?;
        for (i, (p, idx)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}:{idx}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn get_defaults_to_zero() {
        let c = Cut::new();
        assert_eq!(c.get(p(1)), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn set_then_get() {
        let mut c = Cut::new();
        c.set(p(1), 7);
        assert_eq!(c.get(p(1)), 7);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = Cut::from_iter([(p(1), 3), (p(2), 9)]);
        let b = Cut::from_iter([(p(1), 5), (p(3), 1)]);
        a.join(&b);
        assert_eq!(a.get(p(1)), 5);
        assert_eq!(a.get(p(2)), 9);
        assert_eq!(a.get(p(3)), 1);
    }

    #[test]
    fn join_all_of_none_is_empty() {
        let c = Cut::join_all([]);
        assert!(c.is_empty());
    }

    #[test]
    fn dominated_by_checks_pointwise() {
        let a = Cut::from_iter([(p(1), 3)]);
        let b = Cut::from_iter([(p(1), 5), (p(2), 2)]);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        // Equal cuts dominate each other.
        assert!(a.dominated_by(&a));
    }

    #[test]
    fn extend_and_collect() {
        let mut c: Cut = [(p(1), 1)].into_iter().collect();
        c.extend([(p(2), 2)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn debug_format() {
        let c = Cut::from_iter([(p(1), 4)]);
        assert_eq!(format!("{c:?}"), "Cut{p1:4}");
    }

    #[test]
    fn serde_roundtrip() {
        let c = Cut::from_iter([(p(1), 4), (p(8), 0)]);
        let s = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Cut>(&s).unwrap(), c);
    }
}
