//! Externally observable actions of the composed system.
//!
//! A simulation or live run produces a global, totally ordered *trace* of
//! [`Event`]s. The spec checkers in `vsgm-spec` replay this trace against
//! the centralized specification automata of §3–§4 and flag any event for
//! which no spec transition is enabled.

use crate::ids::{ProcessId, StartChangeId};
use crate::message::{AppMsg, NetMsg};
use crate::view::View;
use crate::ProcSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One externally observable action, tagged with the process it occurs at
/// (the paper's subscript `p`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    // ----- membership service outputs (Fig. 2) -----
    /// `MBRSHP.start_change_p(cid, set)`.
    MbrshpStartChange {
        /// Recipient end-point.
        p: ProcessId,
        /// Locally unique start-change identifier.
        cid: StartChangeId,
        /// Suggested membership of the forthcoming view.
        set: ProcSet,
    },
    /// `MBRSHP.view_p(v)`.
    MbrshpView {
        /// Recipient end-point.
        p: ProcessId,
        /// The delivered membership view.
        view: View,
    },

    // ----- GCS application interface (Figs. 4–7, 11) -----
    /// `send_p(m)` — the application at `p` multicasts `m`.
    Send {
        /// Sending end-point.
        p: ProcessId,
        /// The multicast payload.
        msg: AppMsg,
    },
    /// `deliver_p(q, m)` — `p`'s application receives `m` sent by `q`.
    Deliver {
        /// Receiving end-point.
        p: ProcessId,
        /// Original sender of the message.
        q: ProcessId,
        /// The delivered payload.
        msg: AppMsg,
    },
    /// `view_p(v, T)` — the GCS delivers view `v` with transitional set `T`
    /// to the application at `p`.
    GcsView {
        /// Receiving end-point.
        p: ProcessId,
        /// The installed view.
        view: View,
        /// The transitional set delivered with the view (Property 4.1).
        transitional: ProcSet,
    },
    /// `block_p()` — the GCS asks `p`'s application to stop sending.
    Block {
        /// End-point issuing the block request.
        p: ProcessId,
    },
    /// `block_ok_p()` — `p`'s application acknowledges the block request.
    BlockOk {
        /// End-point whose application acknowledged.
        p: ProcessId,
    },

    // ----- CO_RFIFO interface (Fig. 3) -----
    /// `CO_RFIFO.send_p(set, m)`.
    NetSend {
        /// Sending end-point.
        p: ProcessId,
        /// Destination set.
        set: ProcSet,
        /// The wire message.
        msg: NetMsg,
    },
    /// `CO_RFIFO.deliver_{p,q}(m)` — message from `p` delivered to `q`.
    NetDeliver {
        /// Sender.
        p: ProcessId,
        /// Receiver.
        q: ProcessId,
        /// The wire message.
        msg: NetMsg,
    },
    /// `CO_RFIFO.reliable_p(set)`.
    Reliable {
        /// End-point declaring its reliable connections.
        p: ProcessId,
        /// The set of peers to keep gap-free FIFO channels to.
        set: ProcSet,
    },
    /// `CO_RFIFO.live_p(set)` — the environment declares which peers are
    /// genuinely alive and connected to `p`.
    Live {
        /// Affected end-point.
        p: ProcessId,
        /// Its live peer set.
        set: ProcSet,
    },

    // ----- crash / recovery (§8) -----
    /// `crash_p()`.
    Crash {
        /// Crashed end-point.
        p: ProcessId,
    },
    /// `recover_p()`.
    Recover {
        /// Recovered end-point.
        p: ProcessId,
    },
}

impl Event {
    /// The process this action occurs at (the paper's subscript).
    pub fn process(&self) -> ProcessId {
        match *self {
            Event::MbrshpStartChange { p, .. }
            | Event::MbrshpView { p, .. }
            | Event::Send { p, .. }
            | Event::Deliver { p, .. }
            | Event::GcsView { p, .. }
            | Event::Block { p }
            | Event::BlockOk { p }
            | Event::NetSend { p, .. }
            | Event::Reliable { p, .. }
            | Event::Live { p, .. }
            | Event::Crash { p }
            | Event::Recover { p } => p,
            Event::NetDeliver { q, .. } => q,
        }
    }

    /// Whether this is part of the GCS ↔ application interface (the only
    /// actions left visible after the composition of §5 hides the rest).
    pub fn is_application_facing(&self) -> bool {
        matches!(
            self,
            Event::Send { .. }
                | Event::Deliver { .. }
                | Event::GcsView { .. }
                | Event::Block { .. }
                | Event::BlockOk { .. }
        )
    }

    /// Short action name, e.g. `"deliver"`, for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::MbrshpStartChange { .. } => "mbrshp.start_change",
            Event::MbrshpView { .. } => "mbrshp.view",
            Event::Send { .. } => "send",
            Event::Deliver { .. } => "deliver",
            Event::GcsView { .. } => "view",
            Event::Block { .. } => "block",
            Event::BlockOk { .. } => "block_ok",
            Event::NetSend { .. } => "co_rfifo.send",
            Event::NetDeliver { .. } => "co_rfifo.deliver",
            Event::Reliable { .. } => "co_rfifo.reliable",
            Event::Live { .. } => "co_rfifo.live",
            Event::Crash { .. } => "crash",
            Event::Recover { .. } => "recover",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::MbrshpStartChange { p, cid, set } => {
                write!(f, "mbrshp.start_change_{p}({cid}, {set:?})")
            }
            Event::MbrshpView { p, view } => write!(f, "mbrshp.view_{p}({view})"),
            Event::Send { p, msg } => write!(f, "send_{p}({msg:?})"),
            Event::Deliver { p, q, msg } => write!(f, "deliver_{p}({q}, {msg:?})"),
            Event::GcsView { p, view, transitional } => {
                write!(f, "view_{p}({view}, T={transitional:?})")
            }
            Event::Block { p } => write!(f, "block_{p}()"),
            Event::BlockOk { p } => write!(f, "block_ok_{p}()"),
            Event::NetSend { p, set, msg } => {
                write!(f, "co_rfifo.send_{p}({set:?}, {})", msg.tag())
            }
            Event::NetDeliver { p, q, msg } => {
                write!(f, "co_rfifo.deliver_{p},{q}({})", msg.tag())
            }
            Event::Reliable { p, set } => write!(f, "co_rfifo.reliable_{p}({set:?})"),
            Event::Live { p, set } => write!(f, "co_rfifo.live_{p}({set:?})"),
            Event::Crash { p } => write!(f, "crash_{p}()"),
            Event::Recover { p } => write!(f, "recover_{p}()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn process_extraction() {
        let e = Event::Send { p: p(4), msg: AppMsg::from("x") };
        assert_eq!(e.process(), p(4));
        let d = Event::NetDeliver { p: p(1), q: p(2), msg: NetMsg::App(AppMsg::from("x")) };
        // NetDeliver occurs at the *receiver*.
        assert_eq!(d.process(), p(2));
    }

    #[test]
    fn application_facing_classification() {
        assert!(Event::Block { p: p(1) }.is_application_facing());
        assert!(!Event::Live { p: p(1), set: ProcSet::new() }.is_application_facing());
        assert!(!Event::MbrshpView { p: p(1), view: View::initial(p(1)) }.is_application_facing());
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(Event::Crash { p: p(1) }.kind(), "crash");
        assert_eq!(
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::ZERO, set: ProcSet::new() }
                .kind(),
            "mbrshp.start_change"
        );
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let v = View::initial(p(1));
        let events = vec![
            Event::MbrshpStartChange { p: p(1), cid: StartChangeId::ZERO, set: ProcSet::new() },
            Event::MbrshpView { p: p(1), view: v.clone() },
            Event::Send { p: p(1), msg: AppMsg::from("m") },
            Event::Deliver { p: p(1), q: p(2), msg: AppMsg::from("m") },
            Event::GcsView { p: p(1), view: v.clone(), transitional: ProcSet::new() },
            Event::Block { p: p(1) },
            Event::BlockOk { p: p(1) },
            Event::NetSend { p: p(1), set: ProcSet::new(), msg: NetMsg::ViewMsg(v.clone()) },
            Event::NetDeliver { p: p(1), q: p(2), msg: NetMsg::ViewMsg(v) },
            Event::Reliable { p: p(1), set: ProcSet::new() },
            Event::Live { p: p(1), set: ProcSet::new() },
            Event::Crash { p: p(1) },
            Event::Recover { p: p(1) },
        ];
        for e in events {
            assert!(!e.to_string().is_empty());
            assert!(!e.kind().is_empty());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let e = Event::GcsView {
            p: p(1),
            view: View::initial(p(1)),
            transitional: [p(1)].into_iter().collect(),
        };
        let s = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<Event>(&s).unwrap(), e);
    }
}
