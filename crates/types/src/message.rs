//! Application payloads and the tagged wire messages of Figs. 9–11.

use crate::cut::Cut;
use crate::ids::{ProcessId, StartChangeId};
use crate::view::View;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// 1-based index of a message in a per-(sender, view) FIFO sequence.
///
/// The paper indexes `msgs[q][v]` from 1 and uses `last_dlvrd = 0` for
/// "nothing delivered yet"; we keep the same convention, so an index of
/// `i` means "the `i`-th message sent by that sender in that view".
pub type MsgIndex = u64;

/// An opaque application multicast payload.
///
/// Payloads are reference-counted so queueing the same message on many
/// per-peer channels (as the centralized `CO_RFIFO` model does) is cheap.
///
/// ```
/// use vsgm_types::AppMsg;
/// let m = AppMsg::from("hello");
/// assert_eq!(m.as_bytes(), b"hello");
/// assert_eq!(m.len(), 5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct AppMsg {
    data: Arc<[u8]>,
}

impl AppMsg {
    /// Creates a payload from raw bytes.
    pub fn new(data: impl Into<Arc<[u8]>>) -> Self {
        AppMsg { data: data.into() }
    }

    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<&str> for AppMsg {
    fn from(s: &str) -> Self {
        AppMsg { data: s.as_bytes().into() }
    }
}

impl From<Vec<u8>> for AppMsg {
    fn from(v: Vec<u8>) -> Self {
        AppMsg { data: v.into() }
    }
}

impl fmt::Debug for AppMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.data) {
            Ok(s) if s.len() <= 32 => write!(f, "AppMsg({s:?})"),
            _ => write!(f, "AppMsg({} bytes)", self.data.len()),
        }
    }
}

/// The body of a synchronization message (Fig. 10, `tag=sync_msg`).
///
/// Sent by an end-point after it receives `start_change(cid, set)` and its
/// application acknowledges the block request. `view` is the sender's
/// current view; `cut` maps each member of that view to the index of the
/// last message the sender commits to deliver before installing any view
/// `v'` with `v'.startId(sender) = cid`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncPayload {
    /// The locally unique start-change identifier this message answers.
    pub cid: StartChangeId,
    /// The sender's current view at the time of sending, or `None` when the
    /// §5.2.4 *slim* optimization applies (recipient not in the sender's
    /// current view — "I am not in your transitional set").
    pub view: Option<View>,
    /// The committed delivery cut; empty for slim messages.
    pub cut: Cut,
}

impl SyncPayload {
    /// Whether this is a §5.2.4 slim synchronization message.
    pub fn is_slim(&self) -> bool {
        self.view.is_none()
    }

    /// Approximate wire size in bytes (for the E7 overhead experiment).
    pub fn wire_size(&self) -> usize {
        let view_part = self
            .view
            .as_ref()
            .map_or(0, |v| 8 + v.len() * 16 /* id + (member, startId) pairs */);
        8 /* cid */ + view_part + self.cut.len() * 16
    }
}

/// The body of a forwarded application message (Figs. 9/10, `tag=fwd_msg`).
///
/// Carries the original sender `r`, the view `v` the message was originally
/// sent in, its FIFO index `i` in `msgs[r][v]`, and the message itself.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FwdPayload {
    /// Original sender of the message.
    pub origin: ProcessId,
    /// View the message was originally sent in.
    pub view: View,
    /// 1-based index of the message in `msgs[origin][view]`.
    pub index: MsgIndex,
    /// The forwarded application message.
    pub msg: AppMsg,
}

/// Protocol messages of the *pre-agreement baseline* algorithm
/// (`vsgm-baseline`): a traditional two-round virtual-synchrony protocol
/// that first agrees on a globally unique tag and only then exchanges
/// cuts, as in the paper's references \[7, 22\]. Exists purely as the
/// comparison arm of the one-round-vs-two-rounds experiments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum BaselineMsg {
    /// Round 1: propose a tag component for the given participant set.
    Propose {
        /// The processes participating in this agreement.
        participants: std::collections::BTreeSet<ProcessId>,
        /// The proposer's monotone sequence number.
        seq: u64,
    },
    /// Round 2: the cut exchange, labeled with the agreed global tag.
    Sync {
        /// The processes participating in this agreement.
        participants: std::collections::BTreeSet<ProcessId>,
        /// The agreed globally unique tag `(seq, pid)`.
        tag: (u64, u64),
        /// The sender's current view.
        view: View,
        /// The sender's committed delivery cut.
        cut: Cut,
    },
}

impl BaselineMsg {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            BaselineMsg::Propose { participants, .. } => 16 + participants.len() * 8,
            BaselineMsg::Sync { participants, view, cut, .. } => {
                32 + participants.len() * 8 + view.len() * 16 + cut.len() * 16
            }
        }
    }
}

/// A tagged wire message exchanged between end-points over `CO_RFIFO`.
///
/// These are exactly the message kinds of the end-point automata:
///
/// | Variant   | Paper tag  | Introduced in |
/// |-----------|------------|---------------|
/// | [`NetMsg::ViewMsg`] | `view_msg` | Fig. 9 (`WV_RFIFO_p`) |
/// | [`NetMsg::App`]     | `app_msg`  | Fig. 9 |
/// | [`NetMsg::Fwd`]     | `fwd_msg`  | Fig. 9/10 |
/// | [`NetMsg::Sync`]    | `sync_msg` | Fig. 10 (`VS_RFIFO+TS_p`) |
/// | [`NetMsg::SyncAgg`] | — (§9 two-tier extension) | this repo |
/// | [`NetMsg::AppBatch`] | — (endpoint batching) | this repo |
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NetMsg {
    /// "All following `App` messages from me were sent in view `v`."
    ViewMsg(View),
    /// An original application message, in FIFO order within the stream
    /// delimited by the latest `ViewMsg`.
    App(AppMsg),
    /// A forwarded application message on behalf of another end-point.
    Fwd(FwdPayload),
    /// A virtual-synchrony synchronization message.
    Sync(SyncPayload),
    /// §9 extension: a leader-aggregated batch of synchronization messages
    /// (one per constituent end-point).
    SyncAgg(Vec<(ProcessId, SyncPayload)>),
    /// A batch of consecutive original application messages from one
    /// sender, in FIFO order within the stream delimited by the latest
    /// `ViewMsg`. Semantically identical to sending each [`NetMsg::App`]
    /// individually back-to-back — receivers unbatch before any protocol
    /// processing, so the per-message event stream is unchanged.
    AppBatch(Vec<AppMsg>),
    /// A message of the two-round pre-agreement baseline algorithm.
    Baseline(BaselineMsg),
}

impl NetMsg {
    /// The paper's tag name for this message kind.
    pub fn tag(&self) -> &'static str {
        match self {
            NetMsg::ViewMsg(_) => "view_msg",
            NetMsg::App(_) => "app_msg",
            NetMsg::Fwd(_) => "fwd_msg",
            NetMsg::Sync(_) => "sync_msg",
            NetMsg::SyncAgg(_) => "sync_agg",
            NetMsg::AppBatch(_) => "app_batch",
            NetMsg::Baseline(BaselineMsg::Propose { .. }) => "bl_propose",
            NetMsg::Baseline(BaselineMsg::Sync { .. }) => "bl_sync",
        }
    }

    /// Approximate wire size in bytes, used by the overhead experiments.
    pub fn wire_size(&self) -> usize {
        match self {
            NetMsg::ViewMsg(v) => 8 + v.len() * 16,
            NetMsg::App(m) => 16 + m.len(),
            NetMsg::Fwd(f) => 32 + 8 + f.view.len() * 16 + f.msg.len(),
            NetMsg::Sync(s) => s.wire_size(),
            NetMsg::SyncAgg(batch) => batch.iter().map(|(_, s)| 8 + s.wire_size()).sum(),
            NetMsg::AppBatch(batch) => {
                16 + batch.iter().map(|m| 4 + m.len()).sum::<usize>()
            }
            NetMsg::Baseline(b) => b.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ViewId;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn app_msg_construction() {
        let m = AppMsg::from("abc");
        assert_eq!(m.as_bytes(), b"abc");
        assert!(!m.is_empty());
        let e = AppMsg::default();
        assert!(e.is_empty());
        let v = AppMsg::from(vec![1u8, 2, 3, 4]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn app_msg_debug_shows_short_text() {
        assert_eq!(format!("{:?}", AppMsg::from("hi")), "AppMsg(\"hi\")");
        let long = AppMsg::from(vec![0u8; 100]);
        assert_eq!(format!("{long:?}"), "AppMsg(100 bytes)");
    }

    #[test]
    fn sync_payload_slim_detection() {
        let slim = SyncPayload { cid: StartChangeId::new(1), view: None, cut: Cut::default() };
        assert!(slim.is_slim());
        let full = SyncPayload {
            cid: StartChangeId::new(1),
            view: Some(View::initial(p(1))),
            cut: Cut::default(),
        };
        assert!(!full.is_slim());
        assert!(full.wire_size() > slim.wire_size());
    }

    #[test]
    fn net_msg_tags() {
        let v = View::initial(p(1));
        assert_eq!(NetMsg::ViewMsg(v.clone()).tag(), "view_msg");
        assert_eq!(NetMsg::App(AppMsg::from("x")).tag(), "app_msg");
        assert_eq!(
            NetMsg::Fwd(FwdPayload { origin: p(2), view: v.clone(), index: 1, msg: AppMsg::from("x") })
                .tag(),
            "fwd_msg"
        );
        assert_eq!(
            NetMsg::Sync(SyncPayload { cid: StartChangeId::ZERO, view: Some(v), cut: Cut::default() })
                .tag(),
            "sync_msg"
        );
        assert_eq!(NetMsg::SyncAgg(vec![]).tag(), "sync_agg");
        assert_eq!(NetMsg::AppBatch(vec![AppMsg::from("x")]).tag(), "app_batch");
    }

    #[test]
    fn net_msg_serde_roundtrip() {
        let v = View::new(
            ViewId::new(1, 0),
            [p(1), p(2)],
            [(p(1), StartChangeId::new(1)), (p(2), StartChangeId::new(2))],
        );
        let msgs = vec![
            NetMsg::ViewMsg(v.clone()),
            NetMsg::App(AppMsg::from("payload")),
            NetMsg::Fwd(FwdPayload { origin: p(2), view: v.clone(), index: 3, msg: AppMsg::from("f") }),
            NetMsg::Sync(SyncPayload {
                cid: StartChangeId::new(5),
                view: Some(v),
                cut: Cut::from_iter([(p(1), 2), (p(2), 0)]),
            }),
            NetMsg::AppBatch(vec![AppMsg::from("a"), AppMsg::from("bb")]),
        ];
        for m in msgs {
            let s = serde_json::to_string(&m).unwrap();
            let back: NetMsg = serde_json::from_str(&s).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = NetMsg::App(AppMsg::from("a"));
        let big = NetMsg::App(AppMsg::from(vec![0u8; 1000]));
        assert!(big.wire_size() > small.wire_size());
    }
}
