//! Property-based tests for the foundational data types.

use proptest::prelude::*;
use vsgm_types::{AppMsg, Cut, NetMsg, ProcessId, StartChangeId, SyncPayload, View, ViewId};

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u64..32).prop_map(ProcessId::new)
}

fn arb_cut() -> impl Strategy<Value = Cut> {
    prop::collection::btree_map(arb_pid(), 0u64..100, 0..8)
        .prop_map(|m| m.into_iter().collect())
}

fn arb_view() -> impl Strategy<Value = View> {
    (
        0u64..10,
        0u64..4,
        prop::collection::btree_map(arb_pid(), 0u64..50, 1..8),
    )
        .prop_map(|(epoch, proposer, start_ids)| {
            View::new(
                ViewId::new(epoch, proposer),
                start_ids.keys().copied().collect::<Vec<_>>(),
                start_ids.into_iter().map(|(p, c)| (p, StartChangeId::new(c))),
            )
        })
}

proptest! {
    // ----- Cut: join is a semilattice operation -----

    #[test]
    fn cut_join_idempotent(a in arb_cut()) {
        let mut j = a.clone();
        j.join(&a);
        prop_assert!(j.dominated_by(&a) && a.dominated_by(&j));
    }

    #[test]
    fn cut_join_commutative(a in arb_cut(), b in arb_cut()) {
        let ab = Cut::join_all([&a, &b]);
        let ba = Cut::join_all([&b, &a]);
        prop_assert!(ab.dominated_by(&ba) && ba.dominated_by(&ab));
    }

    #[test]
    fn cut_join_associative(a in arb_cut(), b in arb_cut(), c in arb_cut()) {
        let left = Cut::join_all([&Cut::join_all([&a, &b]), &c]);
        let right = Cut::join_all([&a, &Cut::join_all([&b, &c])]);
        prop_assert!(left.dominated_by(&right) && right.dominated_by(&left));
    }

    #[test]
    fn cut_join_is_upper_bound(a in arb_cut(), b in arb_cut()) {
        let j = Cut::join_all([&a, &b]);
        prop_assert!(a.dominated_by(&j));
        prop_assert!(b.dominated_by(&j));
    }

    #[test]
    fn cut_dominated_by_is_a_partial_order(a in arb_cut(), b in arb_cut(), c in arb_cut()) {
        // Reflexive.
        prop_assert!(a.dominated_by(&a));
        // Transitive.
        if a.dominated_by(&b) && b.dominated_by(&c) {
            prop_assert!(a.dominated_by(&c));
        }
    }

    #[test]
    fn cut_serde_roundtrip(a in arb_cut()) {
        let s = serde_json::to_string(&a).unwrap();
        let back: Cut = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(a, back);
    }

    // ----- View -----

    #[test]
    fn view_serde_roundtrip(v in arb_view()) {
        let s = serde_json::to_string(&v).unwrap();
        let back: View = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn view_members_and_start_ids_agree(v in arb_view()) {
        for m in v.members() {
            prop_assert!(v.start_id(*m).is_some());
        }
        prop_assert_eq!(v.start_ids().len(), v.len());
    }

    #[test]
    fn view_intersection_is_symmetric(a in arb_view(), b in arb_view()) {
        let ab: Vec<_> = a.intersection(&b).collect();
        let ba: Vec<_> = b.intersection(&a).collect();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn view_equality_requires_identical_start_ids(v in arb_view()) {
        // Bump one member's start id: views must differ.
        let p = *v.members().iter().next().unwrap();
        let bumped = View::new(
            v.id(),
            v.members().iter().copied().collect::<Vec<_>>(),
            v.start_ids().iter().map(|(q, c)| {
                if *q == p { (*q, c.next()) } else { (*q, *c) }
            }),
        );
        prop_assert_ne!(v, bumped);
    }

    // ----- ViewId order -----

    #[test]
    fn view_id_successor_dominates(epoch in 0u64..1000, proposer in 0u64..8, next in 0u64..8) {
        let v = ViewId::new(epoch, proposer);
        prop_assert!(v.successor(next) > v);
    }

    #[test]
    fn view_id_order_total_and_antisymmetric(a in 0u64..50, b in 0u64..4, c in 0u64..50, d in 0u64..4) {
        let x = ViewId::new(a, b);
        let y = ViewId::new(c, d);
        prop_assert_eq!(x < y, y > x);
        if x <= y && y <= x {
            prop_assert_eq!(x, y);
        }
    }

    // ----- wire messages -----

    #[test]
    fn net_msg_serde_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let m = NetMsg::App(AppMsg::from(payload));
        let s = serde_json::to_string(&m).unwrap();
        prop_assert_eq!(serde_json::from_str::<NetMsg>(&s).unwrap(), m);
    }

    #[test]
    fn sync_payload_slim_is_never_larger(cid in 0u64..100, cut in arb_cut(), v in arb_view()) {
        let full = SyncPayload { cid: StartChangeId::new(cid), view: Some(v), cut };
        let slim = SyncPayload { cid: StartChangeId::new(cid), view: None, cut: Cut::new() };
        prop_assert!(slim.wire_size() <= full.wire_size());
    }

    #[test]
    fn wire_size_is_monotone_in_payload(a in 0usize..512, b in 0usize..512) {
        let ma = NetMsg::App(AppMsg::from(vec![0u8; a]));
        let mb = NetMsg::App(AppMsg::from(vec![0u8; b]));
        prop_assert_eq!(a <= b, ma.wire_size() <= mb.wire_size());
    }
}
