//! Output formatting: a human-readable table (default) and a
//! hand-rolled JSON encoding for CI (`--format json`).

use crate::{Finding, Report};
use std::fmt::Write as _;

/// Renders the report as an aligned human-readable table.
#[must_use]
pub fn table(report: &Report) -> String {
    let mut out = String::new();
    if report.findings.is_empty() {
        let _ = writeln!(
            out,
            "vsgm-analyze: clean — {} files scanned, 0 findings ({} waived{})",
            report.files_scanned,
            report.waived,
            waived_breakdown(report)
        );
        return out;
    }
    let loc_width = report
        .findings
        .iter()
        .map(|f| f.file.len() + 1 + digits(f.line))
        .max()
        .unwrap_or(0);
    for f in &report.findings {
        let loc = format!("{}:{}", f.file, f.line);
        let _ = writeln!(out, "{loc:loc_width$}  {}  {}", f.rule, f.message);
        let _ = writeln!(out, "{:loc_width$}      hint: {}", "", f.hint);
    }
    let _ = writeln!(
        out,
        "\nvsgm-analyze: {} finding(s) in {} files scanned ({} waived{})",
        report.findings.len(),
        report.files_scanned,
        report.waived,
        waived_breakdown(report)
    );
    out
}

/// `: D1 3, P1 7` — or empty when nothing was waived.
fn waived_breakdown(report: &Report) -> String {
    if report.waived_by_rule.is_empty() {
        return String::new();
    }
    let parts: Vec<String> =
        report.waived_by_rule.iter().map(|(r, n)| format!("{r} {n}")).collect();
    format!(": {}", parts.join(", "))
}

/// Renders the report as a single JSON object. Hand-rolled so the crate
/// stays dependency-free; strings are escaped per RFC 8259.
#[must_use]
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"waived\": {},", report.waived);
    let _ = write!(out, "  \"waived_by_rule\": {{");
    for (i, (r, n)) in report.waived_by_rule.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {n}", json_str(r));
    }
    out.push_str("},\n");
    let _ = write!(out, "  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&json_finding(f));
    }
    if report.findings.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

fn json_finding(f: &Finding) -> String {
    format!(
        "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"hint\": {}}}",
        json_str(&f.rule),
        json_str(&f.file),
        f.line,
        json_str(&f.message),
        json_str(&f.hint)
    )
}

/// Escapes `s` as a JSON string literal (including the quotes).
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "P1".to_string(),
                file: "crates/core/src/x.rs".to_string(),
                line: 7,
                message: "`.unwrap()` in non-test code".to_string(),
                hint: "return a typed error".to_string(),
            }],
            waived: 2,
            files_scanned: 10,
            ..Report::default()
        }
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_shape() {
        let j = json(&sample());
        assert!(j.contains("\"rule\": \"P1\""));
        assert!(j.contains("\"line\": 7"));
        assert!(j.contains("\"files_scanned\": 10"));
        assert!(j.contains("\"waived\": 2"));
    }

    #[test]
    fn table_mentions_location_and_hint() {
        let t = table(&sample());
        assert!(t.contains("crates/core/src/x.rs:7"));
        assert!(t.contains("hint: return a typed error"));
        assert!(t.contains("1 finding(s)"));
    }

    #[test]
    fn clean_table_is_one_line() {
        let r = Report { files_scanned: 3, ..Report::default() };
        assert!(table(&r).starts_with("vsgm-analyze: clean"));
    }
}
