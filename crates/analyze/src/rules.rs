//! The protocol rules: D1 determinism, P1 panic-freedom, I1 IOA
//! discipline, C1 spec coverage, R1 lock discipline, T1 clock
//! discipline, A1 audit coverage.
//!
//! Each rule is phrased over the code mask of [`crate::SourceFile`]s and
//! produces [`Finding`]s carrying the rule id, `file:line`, a message,
//! and a fix hint. Waivers are applied by the caller
//! ([`crate::analyze_root`]), not here.

use crate::scan::{find_word, tokens, Tok};
use crate::{FileKind, Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose protocol state must iterate deterministically (D1).
/// `chaos` is held to the same bar: seed-replayable search would silently
/// rot if a HashMap or ambient clock crept into the generator/minimizer.
pub const D1_CRATES: [&str; 6] = ["core", "membership", "types", "spec", "chaos", "explore"];
/// Individual files outside [`D1_CRATES`] held to the determinism bar,
/// plus files inside them pinned explicitly so a crate-list edit cannot
/// silently drop them. The wire codec lives in `net` (a real-transport
/// crate that is otherwise free to use ambient time), but its encoding
/// must be byte-deterministic — golden vectors and cross-peer interop
/// depend on it. The batching stage decides *what goes in a frame*
/// from inputs only (`Input::Tick`); an ambient clock there would make
/// frame boundaries — and hence the differential suite — unreplayable.
/// The server's group instances and shard routing are pinned for the
/// same reason the batch stage is: a hosted group's trace must be
/// byte-identical to an isolated rerun (the multi-group differential
/// suite), which an ambient clock or unordered map would break.
pub const D1_FILES: [&str; 4] = [
    "crates/net/src/codec.rs",
    "crates/core/src/batch.rs",
    "crates/server/src/group.rs",
    "crates/server/src/shard.rs",
];
/// Crates whose non-test code must be panic-free (P1). The multi-group
/// daemon (`server`) is included: one group's panic must never take
/// down the shard-mates it is multiplexed with.
pub const P1_CRATES: [&str; 5] = ["core", "membership", "net", "server", "spec"];
/// Crates holding precondition/effect transition functions (I1).
pub const I1_CRATES: [&str; 2] = ["core", "spec"];
/// Crates whose threaded code is held to the lock discipline (R1): the
/// real-transport layer, the only place the workspace takes locks.
pub const R1_CRATES: [&str; 1] = ["net"];
/// Files pinned under R1 *by path*, independent of [`R1_CRATES`]: the
/// event-loop transport core, where a guard held across a blocking call
/// stalls every connection the loop owns — not just one peer, and the
/// server's directory/shard/router modules, where the same mistake
/// stalls every group on a shard. A future edit to the crate list
/// cannot silently drop these.
pub const R1_FILES: [&str; 6] = [
    "crates/net/src/tcp.rs",
    "crates/net/src/evloop.rs",
    "crates/net/src/writer.rs",
    "crates/server/src/directory.rs",
    "crates/server/src/shard.rs",
    "crates/server/src/server.rs",
];
/// Crates that must route all time through explicit inputs
/// (`Input::Tick` / `vsgm-ioa` sim time) rather than the ambient clock
/// (T1): everything except the real-transport layer (`net`, which
/// genuinely lives in wall-clock time) and the analyzer itself.
pub const T1_CRATES: [&str; 11] = [
    "baseline", "chaos", "core", "explore", "harness", "ioa", "membership", "obs", "order",
    "spec", "types",
];

/// All rule identifiers the analyzer knows, with one-line descriptions.
pub const RULES: [(&str, &str); 8] = [
    ("D1", "determinism: no HashMap/HashSet or ambient time/randomness in protocol crates"),
    ("P1", "panic-freedom: no unwrap/expect/panic!/unreachable!/indexing in protocol code"),
    ("I1", "IOA discipline: precondition/effect pairing and ObsEvent coverage"),
    ("C1", "spec coverage: every spec action exercised by a trace-checker test"),
    ("R1", "lock discipline: lock fields declare a vsgm-lock-tier; no guard held across a blocking call"),
    ("T1", "clock discipline: time enters via Input::Tick/sim time, never the ambient clock"),
    ("A1", "audit coverage: every endpoint State field read by at least one StateAudit check"),
    ("W0", "waiver hygiene: vsgm-allow/vsgm-lock-tier comments must be well-formed"),
];

fn finding(rule: &str, file: &SourceFile, line: usize, message: String, hint: &str) -> Finding {
    Finding {
        rule: rule.to_string(),
        file: file.rel.clone(),
        line,
        message,
        hint: hint.to_string(),
    }
}

fn in_crate_src(file: &SourceFile, crates: &[&str]) -> bool {
    file.kind == FileKind::Src
        && file.crate_name.as_deref().is_some_and(|c| crates.contains(&c))
}

/// Non-test mask lines of a file, as (1-based line, text) pairs.
fn code_lines(file: &SourceFile) -> impl Iterator<Item = (usize, &String)> {
    file.scanned
        .mask
        .iter()
        .enumerate()
        .filter(|(k, _)| !file.scanned.test_line.get(*k).copied().unwrap_or(false))
        .map(|(k, l)| (k + 1, l))
}

// ---------------------------------------------------------------- D1 ---

const D1_HASH_HINT: &str = "use BTreeMap/BTreeSet so iteration (and thus replay) order is \
     deterministic, or waive with `// vsgm-allow(D1): <why this is never iterated>`";
const D1_TIME_HINT: &str = "deterministic crates take time/randomness as explicit inputs \
     (vsgm-ioa SimTime / seeded rng); real-transport drivers may waive with vsgm-allow(D1)";

/// D1 — determinism: no `HashMap`/`HashSet` and no ambient time or
/// randomness in the deterministic protocol crates.
pub fn d1(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let covered = |f: &&SourceFile| {
        in_crate_src(f, &D1_CRATES)
            || (f.kind == FileKind::Src && D1_FILES.contains(&f.rel.as_str()))
    };
    for f in files.iter().filter(covered) {
        let krate = f.crate_name.as_deref().unwrap_or("?");
        for (line, text) in code_lines(f) {
            for coll in ["HashMap", "HashSet"] {
                if !find_word(text, coll).is_empty() {
                    out.push(finding(
                        "D1",
                        f,
                        line,
                        format!("{coll} in deterministic protocol crate `{krate}`"),
                        D1_HASH_HINT,
                    ));
                }
            }
            for src in ["Instant::now", "SystemTime::now", "thread_rng", "from_entropy", "rand::random"]
            {
                if !find_word(text, src).is_empty() {
                    out.push(finding(
                        "D1",
                        f,
                        line,
                        format!("ambient nondeterminism `{src}` in deterministic crate `{krate}`"),
                        D1_TIME_HINT,
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------- P1 ---

const P1_UNWRAP_HINT: &str =
    "convert to a typed error, or prove the invariant and use an invariant-carrying \
     expect with a `// vsgm-allow(P1): <invariant>` waiver";
const P1_INDEX_HINT: &str = "use .get()/.get_mut() and handle the None case explicitly";

/// P1 — panic-freedom: no `unwrap`/`expect`/panicking macros and no
/// slice/array indexing in non-test protocol code.
pub fn p1(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| in_crate_src(f, &P1_CRATES)) {
        for (line, text) in code_lines(f) {
            for pat in [".unwrap(", ".expect("] {
                for _ in find_word(text, pat) {
                    let what = pat.get(1..pat.len() - 1).unwrap_or(pat);
                    out.push(finding(
                        "P1",
                        f,
                        line,
                        format!("{what}() in protocol code"),
                        P1_UNWRAP_HINT,
                    ));
                }
            }
            for mac in ["panic", "unreachable", "todo", "unimplemented", "dbg"] {
                for at in find_word(text, mac) {
                    let bang = text.get(at + mac.len()..).and_then(|s| s.chars().next());
                    if bang == Some('!') {
                        out.push(finding(
                            "P1",
                            f,
                            line,
                            format!("{mac}! in protocol code"),
                            P1_UNWRAP_HINT,
                        ));
                    }
                }
            }
            for at in indexing_sites(text) {
                let _ = at;
                out.push(finding(
                    "P1",
                    f,
                    line,
                    "slice/array indexing in protocol code".to_string(),
                    P1_INDEX_HINT,
                ));
            }
        }
    }
    out
}

/// Byte offsets of `[` tokens that open an indexing expression: the
/// character immediately before is an identifier character, `)`, `]`, or
/// `?` (ruling out attributes `#[…]`, macros `vec![…]`, array types and
/// literals).
fn indexing_sites(line: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut prev = ' ';
    for (at, c) in line.char_indices() {
        if c == '['
            && (prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']' || prev == '?')
        {
            out.push(at);
        }
        prev = c;
    }
    out
}

// ---------------------------------------------------------------- R1 ---

const R1_TIER_HINT: &str = "declare the lock's place in the global acquisition order with \
     `// vsgm-lock-tier(N): <what may be held when this is taken>` on the field or the \
     comment block above it (lower tiers are taken first; same-tier locks never nest)";
const R1_BLOCKING_HINT: &str = "copy what you need out of the guard and drop it before the \
     blocking call (or move the slow work to a dedicated thread); if holding across the \
     call is the design, waive with `// vsgm-allow(R1): <why the hold is bounded>`";

/// Calls that can park the thread for an unbounded or scheduler-decided
/// time. `Condvar::wait`/`wait_timeout` are deliberately absent: waiting
/// on a condvar *requires* holding the paired mutex.
const R1_BLOCKING: [&str; 9] = [
    "write_all", "read_exact", "flush", "connect", "recv", "recv_timeout", "accept", "sleep",
    "join",
];

/// R1 — lock discipline for the threaded net layer: (a) every
/// `Mutex`/`RwLock`/`Condvar` struct field (including `Arc`-wrapped
/// ones) declares a lock-order tier; (b) no lock guard is held across a
/// blocking call.
pub fn r1(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| {
        in_crate_src(f, &R1_CRATES)
            || (f.kind == FileKind::Src && R1_FILES.contains(&f.rel.as_str()))
    }) {
        out.extend(r1_fields(f));
        out.extend(r1_guards(f));
    }
    out
}

/// (a) Lock-typed struct fields must carry a well-formed
/// `vsgm-lock-tier` declaration.
fn r1_fields(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (name, line, ty) in struct_fields(f) {
        let is_test = f.scanned.test_line.get(line.saturating_sub(1)).copied().unwrap_or(false);
        let locky = ty.iter().any(|t| matches!(t.as_str(), "Mutex" | "RwLock" | "Condvar"));
        if !is_test && locky && f.scanned.tier_for(line).is_none() {
            out.push(finding(
                "R1",
                f,
                line,
                format!("lock field `{name}` declares no vsgm-lock-tier"),
                R1_TIER_HINT,
            ));
        }
    }
    out
}

/// `(field name, line, type tokens)` of every named-struct field in the
/// file. Angle brackets are depth-tracked so commas inside generics do
/// not split a field.
fn struct_fields(f: &SourceFile) -> Vec<(String, usize, Vec<String>)> {
    let toks = tokens(&f.scanned.mask);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let header = toks.get(i).is_some_and(|t| t.ident && t.text == "struct")
            && toks.get(i + 1).is_some_and(|t| t.ident);
        if !header {
            i += 1;
            continue;
        }
        // Skip to the body opener, bailing on tuple/unit structs.
        let mut j = i + 2;
        let mut angle = 0i64;
        let mut body = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle == 0 => {
                    body = Some(j);
                    break;
                }
                ";" | "(" if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else {
            i = j.max(i + 1);
            continue;
        };
        // Walk the body at depth 1 collecting `name: Type` pairs.
        let mut depth = 1i64;
        angle = 0;
        let mut k = open + 1;
        let mut pending: Option<(String, usize, Vec<String>)> = None;
        let mut last_ident: Option<(String, usize)> = None;
        while let Some(t) = toks.get(k) {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "<" if depth == 1 => angle += 1,
                ">" if depth == 1 => angle -= 1,
                _ => {}
            }
            if depth == 1 && angle == 0 && t.text == "," {
                if let Some(field) = pending.take() {
                    out.push(field);
                }
                last_ident = None;
            } else if pending.is_none()
                && t.text == ":"
                && toks.get(k + 1).is_none_or(|n| n.text != ":")
                && toks.get(k.saturating_sub(1)).is_some_and(|p| p.ident)
                && depth == 1
                && angle == 0
            {
                if let Some((name, line)) = last_ident.take() {
                    pending = Some((name, line, Vec::new()));
                }
            } else if let Some((_, _, ty)) = pending.as_mut() {
                if t.ident {
                    ty.push(t.text.clone());
                }
            } else if t.ident {
                last_ident = Some((t.text.clone(), t.line));
            }
            k += 1;
        }
        if let Some(field) = pending.take() {
            out.push(field);
        }
        i = k.max(i + 1);
    }
    out
}

/// (b) Heuristic guard-liveness scan: from a `let g = ….lock()` (or
/// `.read()` / `.write()`) binding until its enclosing block closes or
/// `drop(g)` runs, any line containing a blocking call is flagged. The
/// scrutinee guard of an `if let`/`while let` lives exactly for the
/// statement's block. Purely lexical — it cannot see through function
/// calls — but it catches the pattern TSan only hits probabilistically.
fn r1_guards(f: &SourceFile) -> Vec<Finding> {
    struct Guard {
        name: Option<String>,
        /// Brace depth at the binding line; the guard dies when the
        /// running depth drops below this (or `<=` for scrutinees).
        depth: i64,
        scrutinee: bool,
        bound_at: usize,
    }
    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    for (idx, text) in f.scanned.mask.iter().enumerate() {
        let line = idx + 1;
        let is_test = f.scanned.test_line.get(idx).copied().unwrap_or(false);
        let acquires = [".lock()", ".read()", ".write()"]
            .iter()
            .any(|p| !find_word(text, p).is_empty());
        let blocking: Vec<&str> = R1_BLOCKING
            .iter()
            .filter(|w| !find_word(text, w).is_empty())
            .copied()
            .collect();
        if !is_test && !blocking.is_empty() {
            for g in &guards {
                let held = g.name.as_deref().unwrap_or("guard");
                out.push(finding(
                    "R1",
                    f,
                    line,
                    format!(
                        "blocking call ({}) while lock guard `{held}` (line {}) is held",
                        blocking.join(", "),
                        g.bound_at
                    ),
                    R1_BLOCKING_HINT,
                ));
            }
            if guards.is_empty() && acquires {
                out.push(finding(
                    "R1",
                    f,
                    line,
                    format!("blocking call ({}) on a locked temporary", blocking.join(", ")),
                    R1_BLOCKING_HINT,
                ));
            }
        }
        // Drop guards the line explicitly releases.
        guards.retain(|g| {
            g.name.as_deref().is_none_or(|n| {
                find_word(text, "drop").is_empty() || !text.contains(&format!("drop({n})"))
            })
        });
        // New binding that actually *holds* a guard? A plain
        // `let g = m.lock();` does; `let v = m.lock().get(k).copied()…;`
        // does not (the guard is a statement-scoped temporary — the
        // locked-temporary check above covers blocking calls chained on
        // it). Scrutinees (`if let` / `while let` / `match`) hold for
        // the whole block: Rust extends scrutinee temporaries.
        if !is_test && acquires {
            let is_let = !find_word(text, "let").is_empty();
            let scrutinee = (is_let
                && (!find_word(text, "if").is_empty() || !find_word(text, "while").is_empty()))
                || !find_word(text, "match").is_empty();
            if scrutinee || (is_let && acquire_ends_statement(text)) {
                let name = is_let.then(|| binding_name(text)).flatten();
                guards.push(Guard { name, depth, scrutinee, bound_at: line });
            }
        }
        // Update depth and expire guards whose block closed.
        for c in text.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|g| if g.scrutinee { depth > g.depth } else { depth >= g.depth });
    }
    out
}

/// Whether the last lock-acquire call on the line ends the statement —
/// i.e. the binding keeps the guard itself rather than a value read
/// *through* a statement-scoped temporary guard. Tolerates a trailing
/// `.unwrap()`/`?` (std-mutex poisoning) before the `;`.
fn acquire_ends_statement(text: &str) -> bool {
    let end = [".lock()", ".read()", ".write()"]
        .iter()
        .flat_map(|p| find_word(text, p).into_iter().map(move |at| at + p.len()))
        .max()
        .unwrap_or(0);
    let mut tail = text.get(end..).unwrap_or("").trim();
    for suffix in [".unwrap()", ".expect()", "?"] {
        tail = tail.strip_prefix(suffix).unwrap_or(tail).trim_start();
    }
    tail.is_empty() || tail == ";"
}

/// The identifier bound by a `let` on this line: the first identifier
/// after `let` that is not `mut` (best-effort; `None` for patterns).
fn binding_name(text: &str) -> Option<String> {
    let at = find_word(text, "let").into_iter().next()?;
    let rest = text.get(at + 3..)?;
    let mut name = String::new();
    for c in rest.chars() {
        if c.is_alphanumeric() || c == '_' {
            name.push(c);
        } else if !name.is_empty() {
            if name == "mut" {
                name.clear();
                continue;
            }
            break;
        } else if !c.is_whitespace() {
            return None;
        }
    }
    (!name.is_empty() && name != "mut").then_some(name)
}

// ---------------------------------------------------------------- T1 ---

const T1_HINT: &str = "deterministic layers take time as an explicit input (Input::Tick, \
     vsgm-ioa SimTime); only the real-transport net layer may read the ambient clock. \
     Driver shells bridging real time into ticks waive with `// vsgm-allow(T1): <why>`";

/// T1 — clock discipline: no ambient clock reads (`Instant::now`,
/// `SystemTime::now`, `.elapsed(`) in the protocol crates; all time
/// flows through `Input::Tick` / simulated time.
pub fn t1(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| in_crate_src(f, &T1_CRATES)) {
        let krate = f.crate_name.as_deref().unwrap_or("?");
        for (line, text) in code_lines(f) {
            for pat in ["Instant::now", "SystemTime::now", ".elapsed("] {
                if !find_word(text, pat).is_empty() {
                    out.push(finding(
                        "T1",
                        f,
                        line,
                        format!("ambient clock read `{pat}` in protocol crate `{krate}`"),
                        T1_HINT,
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------- I1 ---

const I1_PAIR_HINT: &str = "IOA discipline (Figs. 9-11): every transition effect pairs with an \
     explicit precondition function (`*_pre` or `*_restriction`) and vice versa";
const I1_OBS_HINT: &str = "keep the observability vocabulary total: list the variant in \
     ObsEvent::ALL, match it in recorder.rs, emit it from the instrumented protocol \
     layers, and cover it with a journal/ioa test";

/// I1 — IOA discipline: (a) precondition/effect pairing of transition
/// functions in the algorithm crates; (b) the `vsgm-obs` event vocabulary
/// is total — every `ObsEvent` variant is listed in `ALL`, matched in
/// `recorder.rs`, emitted by instrumented code, and covered by a test.
pub fn i1(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(i1_pairing(files));
    out.extend(i1_obs(files));
    out
}

fn i1_pairing(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for krate in I1_CRATES {
        // name -> (file index, line) of every non-test `fn` in the crate.
        let mut fns: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            if f.kind != FileKind::Src || f.crate_name.as_deref() != Some(krate) {
                continue;
            }
            let toks = tokens(&f.scanned.mask);
            for pair in toks.windows(2) {
                if let [a, b] = pair {
                    let in_test = f
                        .scanned
                        .test_line
                        .get(a.line.saturating_sub(1))
                        .copied()
                        .unwrap_or(false);
                    if !in_test && a.ident && a.text == "fn" && b.ident {
                        fns.entry(b.text.clone()).or_insert((fi, b.line));
                    }
                }
            }
        }
        let base_of = |name: &str, suffix: &str| {
            name.strip_suffix(suffix).map(str::to_string)
        };
        let pres: BTreeSet<String> = fns
            .keys()
            .filter_map(|n| {
                base_of(n, "_pre")
                    .or_else(|| base_of(n, "_restriction"))
                    .or_else(|| base_of(n, "_restriction_with"))
            })
            .collect();
        let effs: BTreeSet<String> =
            fns.keys().filter_map(|n| base_of(n, "_eff")).collect();
        for (name, (fi, line)) in &fns {
            if let Some(base) = base_of(name, "_eff") {
                if !pres.contains(&base) {
                    if let Some(f) = files.get(*fi) {
                        out.push(finding(
                            "I1",
                            f,
                            *line,
                            format!(
                                "transition effect `{name}` has no matching precondition \
                                 (`{base}_pre` / `{base}_restriction`) in crate `{krate}`"
                            ),
                            I1_PAIR_HINT,
                        ));
                    }
                }
            } else if let Some(base) = base_of(name, "_pre") {
                if !effs.contains(&base) {
                    if let Some(f) = files.get(*fi) {
                        out.push(finding(
                            "I1",
                            f,
                            *line,
                            format!(
                                "precondition `{name}` has no matching effect `{base}_eff` \
                                 in crate `{krate}`"
                            ),
                            I1_PAIR_HINT,
                        ));
                    }
                }
            }
        }
    }
    out
}

/// `(enum-variant name, line)` pairs of `pub enum <name>` in the file.
pub fn enum_variants(file: &SourceFile, enum_name: &str) -> Vec<(String, usize)> {
    let toks = tokens(&file.scanned.mask);
    let mut i = 0usize;
    // Find `enum <enum_name> {`.
    while i < toks.len() {
        let is_start = toks.get(i).is_some_and(|t| t.ident && t.text == "enum")
            && toks.get(i + 1).is_some_and(|t| t.ident && t.text == enum_name)
            && toks.get(i + 2).is_some_and(|t| t.text == "{");
        if is_start {
            break;
        }
        i += 1;
    }
    if i >= toks.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut expect_variant = false;
    let mut j = i + 2;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "{" | "(" | "[" => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => expect_variant = true,
            "#" if depth == 1 => {} // variant attribute: idents inside are at depth 2
            _ => {
                if depth == 1 && expect_variant && t.ident {
                    out.push((t.text.clone(), t.line));
                    expect_variant = false;
                }
            }
        }
        j += 1;
    }
    out
}

/// All `Prefix::Variant` references in a token stream, with the line of
/// each and whether that line is test code.
fn path_refs(toks: &[Tok], prefix: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for w in toks.windows(4) {
        if let [a, c1, c2, b] = w {
            if a.ident && a.text == prefix && c1.text == ":" && c2.text == ":" && b.ident {
                out.push((b.text.clone(), b.line));
            }
        }
    }
    out
}

fn is_test_at(f: &SourceFile, line: usize) -> bool {
    f.kind == FileKind::TestsDir
        || f.scanned.test_line.get(line.saturating_sub(1)).copied().unwrap_or(false)
}

fn i1_obs(files: &[SourceFile]) -> Vec<Finding> {
    let Some((efi, event_file)) = files
        .iter()
        .enumerate()
        .find(|(_, f)| f.crate_name.as_deref() == Some("obs") && f.rel.ends_with("src/event.rs"))
    else {
        return Vec::new();
    };
    let variants = enum_variants(event_file, "ObsEvent");
    if variants.is_empty() {
        return Vec::new();
    }

    // `ObsEvent::X` occurrences inside the `const ALL: ... = [...];`
    // declaration of event.rs (everything from `const ALL` to the `;`
    // that ends the item, so the type annotation's brackets don't
    // confuse the span).
    let etoks = tokens(&event_file.scanned.mask);
    let mut in_all: BTreeSet<String> = BTreeSet::new();
    let mut k = 0usize;
    while k < etoks.len() {
        let is_decl = etoks.get(k).is_some_and(|t| t.ident && t.text == "const")
            && etoks.get(k + 1).is_some_and(|t| t.ident && t.text == "ALL");
        if is_decl {
            let mut depth = 0i64;
            let mut j = k + 2;
            let start = j;
            while let Some(t) = etoks.get(j) {
                match t.text.as_str() {
                    "[" | "(" | "{" => depth += 1,
                    "]" | ")" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let slice = etoks.get(start..j).unwrap_or(&[]);
            for (v, _) in path_refs(slice, "ObsEvent") {
                in_all.insert(v);
            }
        }
        k += 1;
    }

    // Where each variant is referenced across the workspace.
    let mut matched_in_recorder: BTreeSet<String> = BTreeSet::new();
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    let mut tested: BTreeSet<String> = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        let toks = tokens(&f.scanned.mask);
        for (v, line) in path_refs(&toks, "ObsEvent") {
            if f.rel.ends_with("obs/src/recorder.rs") && !is_test_at(f, line) {
                matched_in_recorder.insert(v.clone());
            }
            if is_test_at(f, line) {
                tested.insert(v.clone());
            } else if fi != efi
                && f.kind == FileKind::Src
                && f.crate_name.as_deref() != Some("obs")
            {
                emitted.insert(v);
            }
        }
    }

    let mut out = Vec::new();
    for (v, line) in &variants {
        let mut missing = Vec::new();
        if !in_all.contains(v) {
            missing.push("not listed in ObsEvent::ALL");
        }
        if !matched_in_recorder.contains(v) {
            missing.push("not matched in obs/src/recorder.rs");
        }
        if !emitted.contains(v) {
            missing.push("never emitted by instrumented protocol code");
        }
        if !tested.contains(v) {
            missing.push("not covered by any journal/ioa test");
        }
        if !missing.is_empty() {
            out.push(finding(
                "I1",
                event_file,
                *line,
                format!("ObsEvent::{v}: {}", missing.join("; ")),
                I1_OBS_HINT,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------- C1 ---

const C1_HINT: &str = "add a trace-checker test feeding this action to the spec automaton \
     (module test, crates/spec/tests, or the workspace tests/ suites)";

/// C1 — spec coverage: every `Event::X` action a spec automaton in
/// `crates/spec` matches must be exercised by at least one trace-checker
/// test somewhere in the workspace.
pub fn c1(files: &[SourceFile]) -> Vec<Finding> {
    // The test corpus: Event::X references on test lines anywhere.
    let mut tested: BTreeSet<String> = BTreeSet::new();
    for f in files {
        let toks = tokens(&f.scanned.mask);
        for (v, line) in path_refs(&toks, "Event") {
            if is_test_at(f, line) {
                tested.insert(v);
            }
        }
    }
    let mut out = Vec::new();
    for f in files {
        if f.kind != FileKind::Src || f.crate_name.as_deref() != Some("spec") {
            continue;
        }
        let toks = tokens(&f.scanned.mask);
        // First non-test reference per variant in this module.
        let mut first: BTreeMap<String, usize> = BTreeMap::new();
        for (v, line) in path_refs(&toks, "Event") {
            if !is_test_at(f, line) {
                first.entry(v).or_insert(line);
            }
        }
        for (v, line) in first {
            if !tested.contains(&v) {
                out.push(finding(
                    "C1",
                    f,
                    line,
                    format!("spec action `Event::{v}` is not exercised by any trace-checker test"),
                    C1_HINT,
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------- A1 ---

/// The endpoint state definition A1 audits…
pub const A1_STATE_FILE: &str = "crates/core/src/state.rs";
/// …and the `StateAudit` pass that must read every field of it.
pub const A1_AUDIT_FILE: &str = "crates/core/src/audit.rs";

const A1_HINT: &str = "extend vsgm_core::audit with a legal-state check that reads this \
     field — corruption of a field the audit never looks at survives every tick \
     undetected — or waive with `// vsgm-allow(A1): <why corruption here is benign>`";

/// A1 — audit coverage: every field of the endpoint `State` struct
/// ([`A1_STATE_FILE`]) is referenced by the `StateAudit` pass
/// ([`A1_AUDIT_FILE`]), non-test code only. The self-stabilization tier
/// (DESIGN.md §15) claims convergence from *any* corrupted state; a
/// `State` field the audit never reads is a blind spot that silently
/// narrows the claim to "converges unless that field is hit", so new
/// fields are deny-by-default until a check covers them.
pub fn a1(files: &[SourceFile]) -> Vec<Finding> {
    let Some(state) = files.iter().find(|f| f.rel == A1_STATE_FILE) else {
        return Vec::new();
    };
    let audited: BTreeSet<String> = files
        .iter()
        .find(|f| f.rel == A1_AUDIT_FILE)
        .map(|audit| {
            tokens(&audit.scanned.mask)
                .into_iter()
                .filter(|t| t.ident && !is_test_at(audit, t.line))
                .map(|t| t.text)
                .collect()
        })
        .unwrap_or_default();
    let mut out = Vec::new();
    for (name, line) in fields_of_struct(state, "State") {
        if !audited.contains(&name) {
            out.push(finding(
                "A1",
                state,
                line,
                format!("State field `{name}` is read by no StateAudit check"),
                A1_HINT,
            ));
        }
    }
    out
}

/// `(field name, line)` pairs of the named struct's fields in the file.
/// Like [`struct_fields`], but anchored to one struct by name; angle
/// brackets are depth-tracked so `::` paths and generic arguments in
/// field types are never mistaken for field names.
fn fields_of_struct(file: &SourceFile, struct_name: &str) -> Vec<(String, usize)> {
    let toks = tokens(&file.scanned.mask);
    let mut i = 0usize;
    while i < toks.len() {
        let is_start = toks.get(i).is_some_and(|t| t.ident && t.text == "struct")
            && toks.get(i + 1).is_some_and(|t| t.ident && t.text == struct_name);
        if is_start {
            break;
        }
        i += 1;
    }
    // Skip generics to the body opener, bailing on tuple/unit structs.
    let mut j = i + 2;
    let mut angle = 0i64;
    let mut body = None;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle == 0 => {
                body = Some(j);
                break;
            }
            ";" | "(" if angle == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let Some(open) = body else {
        return Vec::new();
    };
    // Walk the body at depth 1: a field name is an identifier followed
    // by a single `:` (two would be a path separator inside a type).
    let mut out = Vec::new();
    let mut depth = 1i64;
    angle = 0;
    let mut k = open + 1;
    while let Some(t) = toks.get(k) {
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "<" if depth == 1 => angle += 1,
            ">" if depth == 1 => angle -= 1,
            _ => {}
        }
        if depth == 1
            && angle == 0
            && t.ident
            && toks.get(k + 1).is_some_and(|n| n.text == ":")
            && toks.get(k + 2).is_none_or(|n| n.text != ":")
        {
            out.push((t.text.clone(), t.line));
        }
        k += 1;
    }
    out
}
