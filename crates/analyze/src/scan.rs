//! A minimal, dependency-free Rust source scanner.
//!
//! The analyzer does not need a full parse of the language: every rule it
//! enforces is phrased over identifiers and punctuation. What it *does*
//! need, to avoid false positives, is to know for every source line
//!
//! * which characters are **code** (as opposed to comment or literal
//!   content),
//! * whether the line sits inside a `#[cfg(test)]` / `#[test]` region,
//! * which `vsgm-allow(RULE): reason` waivers its comments carry.
//!
//! [`scan`] produces exactly that: a *code mask* (the source with comment
//! and string/char-literal contents blanked to spaces, newlines preserved
//! so line/column numbers survive), a per-line test flag, and the parsed
//! waivers. Nested block comments, raw strings (`r#"…"#`), byte strings,
//! and the char-literal/lifetime ambiguity are handled.

/// A waiver comment: `// vsgm-allow(P1): reason` or
/// `// vsgm-allow(D1, P1): reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the waiver comment appears on.
    pub line: usize,
    /// The rule identifiers inside the parentheses, trimmed.
    pub rules: Vec<String>,
    /// Whether a non-empty `: reason` followed the closing parenthesis.
    /// Waivers without a reason are reported (rule `W0`) and not applied.
    pub has_reason: bool,
}

/// A lock-order tier declaration: `// vsgm-lock-tier(1): reason`.
/// Rule `R1` requires one on every lock-typed struct field in the
/// threaded net layer; the tier number documents the global acquisition
/// order (lower tiers are taken first, same-tier locks never nest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierDecl {
    /// 1-based line the declaration comment appears on.
    pub line: usize,
    /// The tier number inside the parentheses, if it parsed as one.
    pub tier: Option<u64>,
    /// Whether a non-empty `: reason` followed the closing parenthesis.
    pub has_reason: bool,
}

impl TierDecl {
    /// A declaration counts only when the tier parsed and a reason
    /// follows; malformed ones are reported (rule `W0`) and ignored.
    pub fn is_well_formed(&self) -> bool {
        self.tier.is_some() && self.has_reason
    }
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Code mask, one entry per source line: comments and literal
    /// contents replaced by spaces, code characters kept in place.
    pub mask: Vec<String>,
    /// Per line: inside a `#[cfg(test)]` module / `#[test]` item.
    pub test_line: Vec<bool>,
    /// Per line: the line holds no code at all (blank or comment-only).
    pub no_code: Vec<bool>,
    /// Per line: the original line is entirely blank.
    pub blank: Vec<bool>,
    /// All waiver comments found, in order of appearance.
    pub waivers: Vec<Waiver>,
    /// All lock-tier declarations found, in order of appearance.
    pub tiers: Vec<TierDecl>,
}

impl Scanned {
    /// Number of lines.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// True when there are no lines at all.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Whether `rule` is waived for a finding on 1-based line `line`: a
    /// well-formed waiver naming the rule on the same line, or on the
    /// contiguous run of comment-only lines directly above it.
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        let names_rule = |l: usize| {
            self.waivers
                .iter()
                .any(|w| w.line == l && w.has_reason && w.rules.iter().any(|r| r == rule))
        };
        if names_rule(line) {
            return true;
        }
        self.comment_block_above(line, names_rule)
    }

    /// The well-formed lock-tier declaration covering 1-based line
    /// `line`, if any: on the same line or on the contiguous run of
    /// comment-only lines directly above (the same placement rule as
    /// waivers).
    pub fn tier_for(&self, line: usize) -> Option<&TierDecl> {
        let at = |l: usize| self.tiers.iter().find(|t| t.line == l && t.is_well_formed());
        if let Some(t) = at(line) {
            return Some(t);
        }
        let mut found = None;
        self.comment_block_above(line, |l| {
            if let Some(t) = at(l) {
                found = Some(t);
                true
            } else {
                false
            }
        });
        found
    }

    /// Whether a waiver/tier comment on `w_line` is positioned to cover
    /// a finding on `line`: the same line, or the contiguous run of
    /// comment-only lines directly above it.
    pub fn covers(&self, w_line: usize, line: usize) -> bool {
        w_line == line || self.comment_block_above(line, |l| l == w_line)
    }

    /// Walks the contiguous run of comment-only lines directly above
    /// 1-based `line`, calling `hit` on each; returns whether `hit`
    /// returned true before the run ended.
    fn comment_block_above(&self, line: usize, mut hit: impl FnMut(usize) -> bool) -> bool {
        let mut l = line;
        while l > 1 {
            l -= 1;
            let idx = l - 1;
            let comment_only = self.no_code.get(idx).copied().unwrap_or(false)
                && !self.blank.get(idx).copied().unwrap_or(true);
            if !comment_only {
                return false;
            }
            if hit(l) {
                return true;
            }
        }
        false
    }
}

/// Scans `src`, producing the code mask, test regions, and waivers.
pub fn scan(src: &str) -> Scanned {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut mask = String::with_capacity(src.len());
    // Comment text collected per 1-based line (for waiver parsing).
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;

    let comment_push = |comments: &mut Vec<(usize, String)>, line: usize, c: char| {
        match comments.last_mut() {
            Some((l, text)) if *l == line => text.push(c),
            _ => comments.push((line, String::from(c))),
        }
    };

    let mut i = 0usize;
    while i < n {
        let c = chars.get(i).copied().unwrap_or(' ');
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            mask.push('\n');
            line += 1;
            i += 1;
        } else if c == '/' && next == Some('/') {
            // Line comment: blank it, capture its text for waiver parsing.
            while i < n && chars.get(i).copied() != Some('\n') {
                comment_push(&mut comments, line, chars.get(i).copied().unwrap_or(' '));
                mask.push(' ');
                i += 1;
            }
        } else if c == '/' && next == Some('*') {
            // Block comment (nested, per Rust).
            let mut depth = 1usize;
            mask.push(' ');
            mask.push(' ');
            i += 2;
            while i < n && depth > 0 {
                let a = chars.get(i).copied().unwrap_or(' ');
                let b = chars.get(i + 1).copied();
                if a == '/' && b == Some('*') {
                    depth += 1;
                    mask.push(' ');
                    mask.push(' ');
                    i += 2;
                } else if a == '*' && b == Some('/') {
                    depth -= 1;
                    mask.push(' ');
                    mask.push(' ');
                    i += 2;
                } else if a == '\n' {
                    mask.push('\n');
                    line += 1;
                    i += 1;
                } else {
                    comment_push(&mut comments, line, a);
                    mask.push(' ');
                    i += 1;
                }
            }
        } else if c == 'r' && (next == Some('"') || next == Some('#'))
            && raw_string_hashes(&chars, i + 1).is_some()
        {
            // Raw string r"…", r#"…"#, … (also reached for br/rb via the
            // byte-string arm below).
            let hashes = raw_string_hashes(&chars, i + 1).unwrap_or(0);
            mask.push(' ');
            i += 1;
            i = blank_raw_string(&chars, i, hashes, &mut mask, &mut line);
        } else if c == 'b' && next == Some('r') && raw_string_hashes(&chars, i + 2).is_some() {
            mask.push(' ');
            mask.push(' ');
            i += 2;
            let hashes = raw_string_hashes(&chars, i).unwrap_or(0);
            i = blank_raw_string(&chars, i, hashes, &mut mask, &mut line);
        } else if c == '"' || (c == 'b' && next == Some('"')) {
            // Ordinary (byte) string literal.
            if c == 'b' {
                mask.push(' ');
                i += 1;
            }
            mask.push(' ');
            i += 1; // past the opening quote
            while i < n {
                let a = chars.get(i).copied().unwrap_or(' ');
                if a == '\\' {
                    mask.push(' ');
                    if chars.get(i + 1).copied() == Some('\n') {
                        mask.push('\n');
                        line += 1;
                    } else {
                        mask.push(' ');
                    }
                    i += 2;
                } else if a == '"' {
                    mask.push(' ');
                    i += 1;
                    break;
                } else if a == '\n' {
                    mask.push('\n');
                    line += 1;
                    i += 1;
                } else {
                    mask.push(' ');
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal or lifetime.
            if next == Some('\\') {
                // '\n', '\u{..}', … — consume to the closing quote.
                mask.push(' ');
                mask.push(' ');
                i += 2;
                while i < n {
                    let a = chars.get(i).copied().unwrap_or(' ');
                    mask.push(if a == '\n' { '\n' } else { ' ' });
                    if a == '\n' {
                        line += 1;
                    }
                    i += 1;
                    if a == '\'' {
                        break;
                    }
                }
            } else if chars.get(i + 2).copied() == Some('\'') && next != Some('\'') {
                // 'x'
                mask.push(' ');
                mask.push(' ');
                mask.push(' ');
                i += 3;
            } else {
                // Lifetime ('a) or loop label: keep as code.
                mask.push('\'');
                i += 1;
            }
        } else {
            mask.push(c);
            i += 1;
        }
    }

    let mask_lines: Vec<String> = mask.split('\n').map(str::to_string).collect();
    let src_lines: Vec<&str> = src.split('\n').collect();
    let total = mask_lines.len();
    let blank: Vec<bool> =
        (0..total).map(|k| src_lines.get(k).is_none_or(|l| l.trim().is_empty())).collect();
    let no_code: Vec<bool> = mask_lines.iter().map(|l| l.trim().is_empty()).collect();
    let test_line = mark_test_regions(&mask_lines);
    let waivers = comments.iter().flat_map(|(l, text)| parse_waivers(*l, text)).collect();
    let tiers = comments.iter().flat_map(|(l, text)| parse_tiers(*l, text)).collect();

    Scanned { mask: mask_lines, test_line, no_code, blank, waivers, tiers }
}

/// If position `i` starts `#*"` (zero or more hashes then a quote),
/// returns the number of hashes — the tail of a raw-string opener.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<usize> {
    let mut hashes = 0usize;
    let mut j = i;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j).copied() == Some('"')).then_some(hashes)
}

/// Blanks a raw string starting at its `#…"` opener; returns the index
/// just past the closing `"#…`.
fn blank_raw_string(
    chars: &[char],
    mut i: usize,
    hashes: usize,
    mask: &mut String,
    line: &mut usize,
) -> usize {
    for _ in 0..=hashes {
        // hashes + opening quote
        mask.push(' ');
        i += 1;
    }
    while i < chars.len() {
        let a = chars.get(i).copied().unwrap_or(' ');
        if a == '"' && (1..=hashes).all(|k| chars.get(i + k).copied() == Some('#')) {
            for _ in 0..=hashes {
                mask.push(' ');
                i += 1;
            }
            return i;
        }
        mask.push(if a == '\n' { '\n' } else { ' ' });
        if a == '\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

/// Parses `vsgm-allow(RULES): reason` occurrences out of one line's
/// comment text.
fn parse_waivers(line: usize, text: &str) -> Vec<Waiver> {
    const NEEDLE: &str = "vsgm-allow(";
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(NEEDLE) {
        let after = rest.get(pos + NEEDLE.len()..).unwrap_or("");
        let Some(close) = after.find(')') else { break };
        let inside = after.get(..close).unwrap_or("");
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = after.get(close + 1..).unwrap_or("").trim_start();
        let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        out.push(Waiver { line, rules, has_reason });
        rest = after.get(close + 1..).unwrap_or("");
    }
    out
}

/// Parses `vsgm-lock-tier(N): reason` occurrences out of one line's
/// comment text.
fn parse_tiers(line: usize, text: &str) -> Vec<TierDecl> {
    const NEEDLE: &str = "vsgm-lock-tier(";
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(NEEDLE) {
        let after = rest.get(pos + NEEDLE.len()..).unwrap_or("");
        let Some(close) = after.find(')') else { break };
        let tier = after.get(..close).unwrap_or("").trim().parse::<u64>().ok();
        let tail = after.get(close + 1..).unwrap_or("").trim_start();
        let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        out.push(TierDecl { line, tier, has_reason });
        rest = after.get(close + 1..).unwrap_or("");
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks the line spans covered by `#[cfg(test)]` / `#[test]`-attributed
/// items (typically `mod tests { … }` blocks).
fn mark_test_regions(mask_lines: &[String]) -> Vec<bool> {
    // Work over a flat char stream with a line number per char.
    let mut chars: Vec<(char, usize)> = Vec::new();
    for (k, l) in mask_lines.iter().enumerate() {
        for c in l.chars() {
            chars.push((c, k));
        }
        chars.push(('\n', k));
    }
    let mut test = vec![false; mask_lines.len()];
    let mut i = 0usize;
    while i < chars.len() {
        let (c, start_line) = chars.get(i).copied().unwrap_or((' ', 0));
        if c != '#' {
            i += 1;
            continue;
        }
        // Attribute: '#' possibly '!' then '[ … ]'.
        let mut j = i + 1;
        if chars.get(j).map(|&(c, _)| c) == Some('!') {
            j += 1;
        }
        if chars.get(j).map(|&(c, _)| c) != Some('[') {
            i += 1;
            continue;
        }
        let (content, after) = bracket_span(&chars, j);
        let compact: String = content.chars().filter(|c| !c.is_whitespace()).collect();
        let is_test_attr = compact == "test"
            || (compact.starts_with("cfg(") && compact.contains("test"));
        if !is_test_attr {
            i = after;
            continue;
        }
        // Skip any further attributes, then find the item's body: the
        // first '{' at zero paren/bracket depth, or a ';' ending a
        // body-less item.
        let mut k = after;
        loop {
            while chars.get(k).is_some_and(|&(c, _)| c.is_whitespace()) {
                k += 1;
            }
            if chars.get(k).map(|&(c, _)| c) == Some('#') {
                let mut a = k + 1;
                if chars.get(a).map(|&(c, _)| c) == Some('!') {
                    a += 1;
                }
                if chars.get(a).map(|&(c, _)| c) == Some('[') {
                    let (_, past) = bracket_span(&chars, a);
                    k = past;
                    continue;
                }
            }
            break;
        }
        let mut depth = 0i64;
        let mut end_line = start_line;
        while k < chars.len() {
            let (c, l) = chars.get(k).copied().unwrap_or((' ', 0));
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                ';' if depth == 0 => {
                    end_line = l;
                    k += 1;
                    break;
                }
                '{' if depth == 0 => {
                    // Brace-match the body.
                    let mut braces = 1i64;
                    k += 1;
                    while k < chars.len() && braces > 0 {
                        let (b, bl) = chars.get(k).copied().unwrap_or((' ', 0));
                        match b {
                            '{' => braces += 1,
                            '}' => braces -= 1,
                            _ => {}
                        }
                        end_line = bl;
                        k += 1;
                    }
                    break;
                }
                _ => {}
            }
            end_line = l;
            k += 1;
        }
        for flag in test.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
        i = k.max(i + 1);
    }
    test
}

/// Returns the text inside the bracket pair opening at `open_idx` (which
/// must hold `[`) and the index just past the matching `]`.
fn bracket_span(chars: &[(char, usize)], open_idx: usize) -> (String, usize) {
    let mut depth = 0i64;
    let mut out = String::new();
    let mut i = open_idx;
    while i < chars.len() {
        let (c, _) = chars.get(i).copied().unwrap_or((' ', 0));
        match c {
            '[' => {
                depth += 1;
                if depth > 1 {
                    out.push(c);
                }
            }
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return (out, i + 1);
                }
                out.push(c);
            }
            _ => out.push(c),
        }
        i += 1;
    }
    (out, i)
}

/// Byte offsets at which `pattern` occurs in `line` with identifier
/// boundaries respected: when the pattern starts (ends) with an
/// identifier character, the character just before (after) the match
/// must not be one. Patterns with punctuation edges (`.unwrap(`) match
/// positionally.
pub fn find_word(line: &str, pattern: &str) -> Vec<usize> {
    let first_ident = pattern.chars().next().is_some_and(is_ident_char);
    let last_ident = pattern.chars().last().is_some_and(is_ident_char);
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = line.get(from..).and_then(|s| s.find(pattern)) {
        let at = from + rel;
        let before_ok = !first_ident
            || at == 0
            || !line.get(..at).and_then(|s| s.chars().last()).is_some_and(is_ident_char);
        let after = at + pattern.len();
        let after_ok = !last_ident
            || !line.get(after..).and_then(|s| s.chars().next()).is_some_and(is_ident_char);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + pattern.len().max(1);
    }
    out
}

/// One token of the code mask: an identifier (or number) or a single
/// punctuation character, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Identifier text, or the punctuation character as a string.
    pub text: String,
    /// 1-based line number.
    pub line: usize,
    /// Whether this is an identifier/number token.
    pub ident: bool,
}

/// Tokenizes the code mask into identifiers and punctuation (whitespace
/// dropped; comments/literals are already blank in the mask).
pub fn tokens(mask_lines: &[String]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (k, l) in mask_lines.iter().enumerate() {
        let line = k + 1;
        let mut cur = String::new();
        for c in l.chars() {
            if is_ident_char(c) {
                cur.push(c);
            } else {
                if !cur.is_empty() {
                    out.push(Tok { text: std::mem::take(&mut cur), line, ident: true });
                }
                if !c.is_whitespace() {
                    out.push(Tok { text: c.to_string(), line, ident: false });
                }
            }
        }
        if !cur.is_empty() {
            out.push(Tok { text: cur, line, ident: true });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let s = scan("let x = \"HashMap\"; // HashMap here\nlet y = HashMap::new();\n");
        assert!(!s.mask.first().unwrap().contains("HashMap"), "{:?}", s.mask);
        assert!(s.mask.get(1).unwrap().contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let s = scan("let a = r#\"unwrap() \"inner\" \"#; let b = '\\''; let c: &'static str = x;");
        let m = s.mask.first().unwrap();
        assert!(!m.contains("unwrap"), "{m}");
        assert!(m.contains("&'static"), "{m}");
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ code()\n");
        let m = s.mask.first().unwrap();
        assert!(!m.contains("comment"), "{m}");
        assert!(m.contains("code()"), "{m}");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        assert_eq!(s.test_line, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn test_attr_on_fn_is_marked() {
        let src = "#[test]\nfn t() {\n    boom();\n}\nfn real() {}\n";
        let s = scan(src);
        assert!(*s.test_line.first().unwrap() && s.test_line.get(3).copied().unwrap());
        assert!(!s.test_line.get(4).copied().unwrap());
    }

    #[test]
    fn waiver_parsing_with_and_without_reason() {
        let s = scan("// vsgm-allow(P1): checked by enabled_actions\n// vsgm-allow(D1,P1)\n");
        assert_eq!(s.waivers.len(), 2);
        let first = s.waivers.first().unwrap();
        assert_eq!(first.rules, vec!["P1"]);
        assert!(first.has_reason);
        let second = s.waivers.get(1).unwrap();
        assert_eq!(second.rules, vec!["D1", "P1"]);
        assert!(!second.has_reason);
    }

    #[test]
    fn waiver_applies_to_same_line_and_comment_block_above() {
        let src = "// vsgm-allow(P1): fine here\nx.unwrap();\ny.unwrap(); // vsgm-allow(P1): inline\nz.unwrap();\n";
        let s = scan(src);
        assert!(s.is_waived("P1", 2));
        assert!(s.is_waived("P1", 3));
        assert!(!s.is_waived("P1", 4));
        assert!(!s.is_waived("D1", 2));
    }

    #[test]
    fn blank_line_breaks_waiver_chain() {
        let src = "// vsgm-allow(P1): above\n\nx.unwrap();\n";
        let s = scan(src);
        assert!(!s.is_waived("P1", 3));
    }

    #[test]
    fn tier_parsing_and_placement() {
        let src = "// vsgm-lock-tier(2): taken after the connect guard\n\
                   inner: Mutex<State>,\n\
                   other: Mutex<State>, // vsgm-lock-tier(1): leaf lock, nothing nests inside\n\
                   bare: Mutex<State>,\n";
        let s = scan(src);
        assert_eq!(s.tiers.len(), 2);
        assert_eq!(s.tier_for(2).and_then(|t| t.tier), Some(2));
        assert_eq!(s.tier_for(3).and_then(|t| t.tier), Some(1));
        assert!(s.tier_for(4).is_none());
    }

    #[test]
    fn malformed_tiers_are_kept_but_not_applied() {
        let s = scan("a: Mutex<X>, // vsgm-lock-tier(one): not a number\nb: Mutex<X>, // vsgm-lock-tier(3)\n");
        assert_eq!(s.tiers.len(), 2);
        assert!(s.tiers.iter().all(|t| !t.is_well_formed()));
        assert!(s.tier_for(1).is_none() && s.tier_for(2).is_none());
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert_eq!(find_word("HashMap<Foo, HashMapLike>", "HashMap"), vec![0]);
        assert_eq!(find_word("a.unwrap().unwrap()", ".unwrap("), vec![1, 10]);
    }
}
