//! `vsgm-analyze` — a workspace protocol analyzer.
//!
//! The paper's algorithms (Figs. 9–11) refine its I/O-automaton specs
//! (Figs. 2–7); the refinement only means something while the Rust
//! implementation stays **deterministic**, **total**, and structured as
//! precondition/effect transitions. This crate walks the workspace
//! sources with a small hand-rolled token scanner (no `syn`; the build
//! environment is offline) and enforces exactly that discipline:
//!
//! | Rule | Enforces |
//! |---|---|
//! | `D1` | determinism: no `HashMap`/`HashSet`, no ambient time/randomness in protocol crates |
//! | `P1` | panic-freedom: no `unwrap`/`expect`/panicking macros/indexing in protocol code |
//! | `I1` | IOA discipline: `*_pre`/`*_eff` pairing; total `ObsEvent` vocabulary |
//! | `C1` | spec coverage: every spec action exercised by a trace-checker test |
//! | `R1` | lock discipline: lock fields declare a `vsgm-lock-tier`; no guard held across a blocking call |
//! | `T1` | clock discipline: time enters via `Input::Tick`/sim time, never the ambient clock |
//! | `A1` | audit coverage: every endpoint `State` field is read by at least one `StateAudit` check |
//! | `W0` | waiver hygiene: `vsgm-allow`/`vsgm-lock-tier` comments must be well-formed, and every waiver must suppress something |
//!
//! Findings carry `file:line`, the rule id, and a fix hint. A finding is
//! suppressed by an inline waiver — `// vsgm-allow(RULE): reason` on the
//! same line or the comment block directly above — so every exception is
//! visible and justified in the source itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod rules;
pub mod scan;

use scan::Scanned;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a source file lives, which decides how rules treat it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under some `crates/<name>/src`: production code (modulo inline
    /// `#[cfg(test)]` regions, which the scanner marks).
    Src,
    /// Under a `tests/` directory (crate-level or workspace-level): test
    /// code, exempt from D1/P1 and counted as coverage for I1/C1.
    TestsDir,
}

/// One scanned workspace source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The `crates/<name>` the file belongs to, if any.
    pub crate_name: Option<String>,
    /// Production or test location.
    pub kind: FileKind,
    /// Scanner output (code mask, test regions, waivers).
    pub scanned: Scanned,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`D1`, `P1`, `I1`, `C1`, `W0`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// The analyzer's result: surviving findings plus bookkeeping.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived waivers, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by well-formed waivers.
    pub waived: usize,
    /// Suppressed-finding counts keyed by rule id — the waiver budget.
    /// Tests pin these totals so a new waiver is a visible, reviewed
    /// event rather than silent drift.
    pub waived_by_rule: std::collections::BTreeMap<String, usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scans every workspace source under `root` (`crates/*/{src,tests}` and
/// the top-level `tests/`) and runs the selected rules (`None` = all).
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn analyze_root(root: &Path, selected: Option<&BTreeSet<String>>) -> io::Result<Report> {
    let files = collect_files(root)?;
    let enabled = |r: &str| selected.is_none_or(|s| s.contains(r));
    let mut raw = Vec::new();
    if enabled("D1") {
        raw.extend(rules::d1(&files));
    }
    if enabled("P1") {
        raw.extend(rules::p1(&files));
    }
    if enabled("I1") {
        raw.extend(rules::i1(&files));
    }
    if enabled("C1") {
        raw.extend(rules::c1(&files));
    }
    if enabled("R1") {
        raw.extend(rules::r1(&files));
    }
    if enabled("T1") {
        raw.extend(rules::t1(&files));
    }
    if enabled("A1") {
        raw.extend(rules::a1(&files));
    }

    // Apply waivers, attributing each suppression to the waiver comment
    // that did the suppressing so unused waivers can be flagged below.
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
    for f in raw {
        let sf = files.iter().find(|sf| sf.rel == f.file);
        let waived = sf.is_some_and(|sf| sf.scanned.is_waived(&f.rule, f.line));
        if waived {
            report.waived += 1;
            *report.waived_by_rule.entry(f.rule.clone()).or_insert(0) += 1;
            if let Some(sf) = sf {
                for w in sf.scanned.waivers.iter().filter(|w| {
                    w.has_reason
                        && w.rules.iter().any(|r| r == &f.rule)
                        && sf.scanned.covers(w.line, f.line)
                }) {
                    used.insert((sf.rel.clone(), w.line));
                }
            }
        } else {
            report.findings.push(f);
        }
    }

    // Hygiene (W0): malformed waivers/tier declarations, and — when the
    // full rule set ran, so `used` is complete — waivers that suppress
    // nothing. The analyzer's own sources discuss the comment syntax in
    // prose, so they are exempt from the sweeps that key on that text.
    if enabled("W0") {
        let known: BTreeSet<&str> = rules::RULES.iter().map(|(r, _)| *r).collect();
        for sf in &files {
            let is_analyze = sf.crate_name.as_deref() == Some("analyze");
            for w in &sf.scanned.waivers {
                if !w.has_reason {
                    report.findings.push(Finding {
                        rule: "W0".to_string(),
                        file: sf.rel.clone(),
                        line: w.line,
                        message: format!(
                            "waiver for {} carries no reason and is ignored",
                            w.rules.join(", ")
                        ),
                        hint: "write `// vsgm-allow(RULE): <why the rule is safe to bend here>`"
                            .to_string(),
                    });
                }
            }
            for t in sf.scanned.tiers.iter().filter(|t| !t.is_well_formed() && !is_analyze) {
                report.findings.push(Finding {
                    rule: "W0".to_string(),
                    file: sf.rel.clone(),
                    line: t.line,
                    message: "malformed vsgm-lock-tier declaration (tier must be a number \
                              and a `: reason` must follow) — it is ignored"
                        .to_string(),
                    hint: "write `// vsgm-lock-tier(N): <what may be held when this is taken>`"
                        .to_string(),
                });
            }
            if selected.is_none() && !is_analyze {
                for w in &sf.scanned.waivers {
                    let in_test =
                        sf.scanned.test_line.get(w.line.saturating_sub(1)).copied().unwrap_or(false);
                    let all_known = w.rules.iter().all(|r| known.contains(r.as_str()));
                    if w.has_reason
                        && !in_test
                        && all_known
                        && !used.contains(&(sf.rel.clone(), w.line))
                    {
                        report.findings.push(Finding {
                            rule: "W0".to_string(),
                            file: sf.rel.clone(),
                            line: w.line,
                            message: format!(
                                "waiver for {} suppresses no finding — stale, delete it",
                                w.rules.join(", ")
                            ),
                            hint: "every waiver must buy an exception some rule would \
                                   otherwise flag; remove waivers the code has outgrown"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
    report.findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    Ok(report)
}

/// Walks `root` for the analyzable sources.
///
/// # Errors
///
/// Propagates I/O errors (unreadable directories or files).
pub fn collect_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir.file_name().and_then(|n| n.to_str()).map(str::to_string);
            walk_rs(&dir.join("src"), root, name.clone(), FileKind::Src, &mut out)?;
            walk_rs(&dir.join("tests"), root, name.clone(), FileKind::TestsDir, &mut out)?;
            walk_rs(&dir.join("benches"), root, name, FileKind::TestsDir, &mut out)?;
        }
    }
    walk_rs(&root.join("tests"), root, None, FileKind::TestsDir, &mut out)?;
    Ok(out)
}

fn walk_rs(
    dir: &Path,
    root: &Path,
    crate_name: Option<String>,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, crate_name.clone(), kind, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile { rel, crate_name: crate_name.clone(), kind, scanned: scan::scan(&src) });
        }
    }
    Ok(())
}

/// Searches upward from `start` for a directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
