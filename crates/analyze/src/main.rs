//! CLI for `vsgm-analyze`.
//!
//! ```text
//! vsgm-analyze [--root DIR] [--format table|json] [--rules D1,P1,...] [--list-rules]
//! ```
//!
//! Exits 0 on a clean tree, 1 when findings survive waivers, 2 on usage
//! or I/O errors.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use vsgm_analyze::{analyze_root, find_root, report, rules};

struct Opts {
    root: Option<PathBuf>,
    json: bool,
    rules: Option<BTreeSet<String>>,
    list_rules: bool,
}

fn usage() -> String {
    "usage: vsgm-analyze [--root DIR] [--format table|json] [--rules D1,P1,...] [--list-rules]\n"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts { root: None, json: false, rules: None, list_rules: false };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or_else(|| "--root needs a value".to_string())?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or_else(|| "--format needs a value".to_string())?;
                match v.as_str() {
                    "json" => opts.json = true,
                    "table" => opts.json = false,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--rules" => {
                let v = it.next().ok_or_else(|| "--rules needs a value".to_string())?;
                let known: BTreeSet<&str> = rules::RULES.iter().map(|(id, _)| *id).collect();
                let mut set = BTreeSet::new();
                for r in v.split(',').filter(|r| !r.is_empty()) {
                    let r = r.to_ascii_uppercase();
                    if !known.contains(r.as_str()) {
                        return Err(format!("unknown rule `{r}`"));
                    }
                    set.insert(r);
                }
                opts.rules = Some(set);
            }
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprint!("vsgm-analyze: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (id, desc) in rules::RULES {
            println!("{id}  {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("vsgm-analyze: cannot determine current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.or_else(|| find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!(
                "vsgm-analyze: no workspace root found above {} (pass --root)",
                cwd.display()
            );
            return ExitCode::from(2);
        }
    };

    let rep = match analyze_root(&root, opts.rules.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vsgm-analyze: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.json {
        print!("{}", report::json(&rep));
    } else {
        print!("{}", report::table(&rep));
    }
    if rep.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
