//! End-to-end analyzer tests: tempdir fixture workspaces seeded with one
//! violation per rule, waiver-placement semantics, and the zero-exit
//! guarantee on the real tree (which `scripts/check.sh` relies on).

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use vsgm_analyze::analyze_root;

/// Materializes a throwaway workspace under `CARGO_TARGET_TMPDIR` with
/// the given `(relative path, contents)` files plus a root `Cargo.toml`.
fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fixture");
    }
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dirs");
        fs::write(&path, content).expect("write fixture file");
    }
    fs::create_dir_all(root.join("crates")).expect("create crates dir");
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write root manifest");
    root
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

// ---------------------------------------------------------------- D1 ---

#[test]
fn d1_flags_hash_collections_and_ambient_time() {
    let root = fixture(
        "d1-dirty",
        &[(
            "crates/core/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let hits: Vec<(&str, usize)> =
        report.findings.iter().map(|f| (f.rule.as_str(), f.line)).collect();
    assert!(hits.contains(&("D1", 1)), "HashMap not flagged: {:?}", report.findings);
    assert!(hits.contains(&("D1", 2)), "Instant::now not flagged: {:?}", report.findings);
    let first = report.findings.first().expect("at least one finding");
    assert_eq!(first.file, "crates/core/src/lib.rs");
    assert!(!first.hint.is_empty(), "findings carry a fix hint");
}

#[test]
fn d1_ignores_crates_outside_its_scope() {
    let root = fixture(
        "d1-out-of-scope",
        &[("crates/harness/src/lib.rs", "use std::collections::HashMap;\n")],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    assert!(report.is_clean(), "harness is not a D1 crate: {:?}", report.findings);
}

#[test]
fn d1_covers_the_wire_codec_by_path() {
    // `net` as a whole is exempt from D1 (real transports need ambient
    // time), but the wire codec is pinned to the determinism bar by file
    // path: its byte output backs golden vectors and cross-peer interop.
    let root = fixture(
        "d1-codec-file",
        &[
            (
                "crates/net/src/codec.rs",
                "use std::collections::HashMap;\npub fn f() {}\n",
            ),
            ("crates/net/src/tcp.rs", "use std::collections::HashMap;\npub fn g() {}\n"),
        ],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let d1_files: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "D1")
        .map(|f| f.file.as_str())
        .collect();
    assert!(
        d1_files.contains(&"crates/net/src/codec.rs"),
        "codec.rs must be D1-covered: {:?}",
        report.findings
    );
    assert!(
        !d1_files.contains(&"crates/net/src/tcp.rs"),
        "the rest of net stays out of D1 scope: {:?}",
        report.findings
    );
}

#[test]
fn d1_covers_the_batching_stage_by_path() {
    // `batch.rs` sits inside the D1 crate `core` *and* is pinned by file
    // path: frame boundaries must be a function of inputs (Input::Tick),
    // or the batching differential suite stops being replayable. The
    // explicit entry keeps the file covered even if the crate list is
    // ever reorganized.
    assert!(
        vsgm_analyze::rules::D1_FILES.contains(&"crates/core/src/batch.rs"),
        "batch.rs must be pinned in D1_FILES: {:?}",
        vsgm_analyze::rules::D1_FILES
    );
    let root = fixture(
        "d1-batch-file",
        &[(
            "crates/core/src/batch.rs",
            "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let d1_files: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "D1")
        .map(|f| f.file.as_str())
        .collect();
    assert!(
        d1_files.contains(&"crates/core/src/batch.rs"),
        "batch.rs must be D1-covered: {:?}",
        report.findings
    );
}

// ---------------------------------------------------------------- P1 ---

#[test]
fn p1_flags_panics_and_indexing_but_not_test_code() {
    let root = fixture(
        "p1-dirty",
        &[(
            "crates/net/src/lib.rs",
            "pub fn f(xs: &[u8]) -> u8 {\n\
                 let v = Some(1u8).unwrap();\n\
                 if xs.is_empty() { panic!(\"boom\") }\n\
                 v + xs[0]\n\
             }\n\
             \n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() {\n\
                     Some(2u8).unwrap();\n\
                 }\n\
             }\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    assert!(report.findings.iter().all(|f| f.rule == "P1"), "{:?}", report.findings);
    let lines: Vec<usize> = report.findings.iter().map(|f| f.line).collect();
    assert!(lines.contains(&2), "unwrap not flagged: {:?}", report.findings);
    assert!(lines.contains(&3), "panic! not flagged: {:?}", report.findings);
    assert!(lines.contains(&4), "indexing not flagged: {:?}", report.findings);
    assert!(!lines.contains(&11), "cfg(test) region must be exempt: {:?}", report.findings);
}

#[test]
fn p1_ignores_tests_directories() {
    let root = fixture(
        "p1-tests-dir",
        &[("crates/core/tests/endpoint.rs", "#[test]\nfn t() { Some(1).unwrap(); }\n")],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    assert!(report.is_clean(), "tests/ dirs are exempt: {:?}", report.findings);
}

// ---------------------------------------------------------------- I1 ---

#[test]
fn i1_flags_unpaired_transition_functions() {
    let root = fixture(
        "i1-pairing",
        &[(
            "crates/core/src/lib.rs",
            "pub fn deliver_eff() {}\n\
             pub fn send_pre() -> bool { true }\n\
             pub fn install_pre() -> bool { true }\n\
             pub fn install_eff() {}\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("deliver_eff") && m.contains("no matching precondition")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("send_pre") && m.contains("no matching effect")),
        "{msgs:?}"
    );
    assert!(
        !msgs.iter().any(|m| m.contains("install")),
        "paired install_pre/install_eff must not be flagged: {msgs:?}"
    );
}

#[test]
fn i1_flags_incomplete_obs_vocabulary() {
    let root = fixture(
        "i1-obs",
        &[
            (
                "crates/obs/src/event.rs",
                "pub enum ObsEvent { MsgSent, MsgDropped }\n\
                 impl ObsEvent {\n\
                     pub const ALL: [ObsEvent; 2] = [ObsEvent::MsgSent, ObsEvent::MsgDropped];\n\
                 }\n",
            ),
            (
                "crates/obs/src/recorder.rs",
                "pub fn role(e: super::ObsEvent) {\n\
                     match e { ObsEvent::MsgSent => {} _ => {} }\n\
                 }\n",
            ),
            ("crates/core/src/lib.rs", "pub fn emit() { observe(ObsEvent::MsgSent); }\n"),
            ("crates/core/tests/journal.rs", "#[test]\nfn t() { check(ObsEvent::MsgSent); }\n"),
        ],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    // MsgSent is listed, matched, emitted, and tested: clean.
    assert!(
        !report.findings.iter().any(|f| f.message.contains("MsgSent:")),
        "{:?}",
        report.findings
    );
    // MsgDropped is in ALL but matched nowhere else: one finding naming
    // each missing obligation.
    let dropped: Vec<_> =
        report.findings.iter().filter(|f| f.message.contains("MsgDropped")).collect();
    assert_eq!(dropped.len(), 1, "{:?}", report.findings);
    let d = dropped.first().expect("checked nonempty");
    assert_eq!(d.rule, "I1");
    assert_eq!(d.file, "crates/obs/src/event.rs");
    assert!(d.message.contains("not matched in obs/src/recorder.rs"), "{}", d.message);
    assert!(d.message.contains("never emitted"), "{}", d.message);
    assert!(d.message.contains("not covered by any journal/ioa test"), "{}", d.message);
}

// ---------------------------------------------------------------- C1 ---

#[test]
fn c1_flags_spec_actions_without_trace_tests() {
    let root = fixture(
        "c1-dirty",
        &[
            (
                "crates/spec/src/lib.rs",
                "pub fn observe(e: &Event) {\n\
                     match e { Event::Send => {} Event::Crash => {} _ => {} }\n\
                 }\n",
            ),
            ("crates/spec/tests/trace.rs", "#[test]\nfn t() { drive(Event::Send); }\n"),
        ],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let c1: Vec<_> = report.findings.iter().filter(|f| f.rule == "C1").collect();
    assert_eq!(c1.len(), 1, "{:?}", report.findings);
    let f = c1.first().expect("checked nonempty");
    assert!(f.message.contains("Event::Crash"), "{}", f.message);
    assert!(!report.findings.iter().any(|f| f.message.contains("Event::Send")));
}

// ----------------------------------------------------------- waivers ---

const HASHMAP_LINE: &str = "use std::collections::HashMap;";

fn analyze_one(name: &str, core_lib: &str) -> vsgm_analyze::Report {
    let root = fixture(name, &[("crates/core/src/lib.rs", core_lib)]);
    analyze_root(&root, None).expect("analyze fixture")
}

#[test]
fn waiver_on_the_finding_line_suppresses() {
    let src = format!("{HASHMAP_LINE} // vsgm-allow(D1): lookup only, never iterated\n");
    let report = analyze_one("waive-inline", &src);
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.waived, 1);
}

#[test]
fn waiver_in_the_comment_block_above_suppresses() {
    let src = format!(
        "// This map is keyed by ProcessId but only ever probed.\n\
         // vsgm-allow(D1): lookup only, never iterated\n\
         {HASHMAP_LINE}\n"
    );
    let report = analyze_one("waive-above", &src);
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.waived, 1);
}

#[test]
fn blank_line_breaks_the_waiver_chain() {
    let src = format!("// vsgm-allow(D1): too far away\n\n{HASHMAP_LINE}\n");
    let report = analyze_one("waive-gap", &src);
    // The HashMap is flagged, and the now-orphaned waiver is flagged too.
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, vec!["W0", "D1"], "{:?}", report.findings);
    assert_eq!(report.waived, 0);
}

#[test]
fn waiver_for_another_rule_does_not_suppress() {
    let src = format!("{HASHMAP_LINE} // vsgm-allow(P1): names the wrong rule\n");
    let report = analyze_one("waive-wrong-rule", &src);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    // The D1 finding survives, and the P1 waiver — which suppresses
    // nothing — is itself reported stale.
    assert_eq!(rules, vec!["D1", "W0"], "{:?}", report.findings);
}

#[test]
fn reasonless_waiver_is_ignored_and_reported_as_w0() {
    let src = format!("{HASHMAP_LINE} // vsgm-allow(D1)\n");
    let report = analyze_one("waive-no-reason", &src);
    let rules: BTreeSet<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules.contains("D1"), "reasonless waiver must not suppress: {:?}", report.findings);
    assert!(rules.contains("W0"), "reasonless waiver must be reported: {:?}", report.findings);
    assert_eq!(report.waived, 0);
}

// ----------------------------------------------- rule selection & CLI ---

#[test]
fn rule_selection_runs_only_the_requested_rules() {
    let root = fixture(
        "select-rules",
        &[(
            "crates/core/src/lib.rs",
            "use std::collections::HashMap;\npub fn f() { None::<u8>.unwrap(); }\n",
        )],
    );
    let only_p1: BTreeSet<String> = ["P1".to_string()].into_iter().collect();
    let report = analyze_root(&root, Some(&only_p1)).expect("analyze fixture");
    assert!(report.findings.iter().all(|f| f.rule == "P1"), "{:?}", report.findings);
    assert!(!report.findings.is_empty());
}

#[test]
fn cli_exits_nonzero_on_findings_and_zero_on_the_real_tree() {
    let bin = env!("CARGO_BIN_EXE_vsgm-analyze");
    let dirty = fixture("cli-dirty", &[("crates/core/src/lib.rs", "use std::collections::HashMap;\n")]);

    let out = std::process::Command::new(bin)
        .args(["--root", dirty.to_str().expect("utf-8 path")])
        .output()
        .expect("run vsgm-analyze");
    assert_eq!(out.status.code(), Some(1), "dirty tree must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("D1") && text.contains("crates/core/src/lib.rs:1"), "{text}");

    let repo = repo_root();
    let out = std::process::Command::new(bin)
        .args(["--root", repo.to_str().expect("utf-8 path"), "--format", "json"])
        .output()
        .expect("run vsgm-analyze");
    assert_eq!(
        out.status.code(),
        Some(0),
        "the real tree must be clean: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = std::process::Command::new(bin)
        .arg("--definitely-not-a-flag")
        .output()
        .expect("run vsgm-analyze");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}

// ---------------------------------------------------------------- R1 ---

#[test]
fn r1_flags_lock_fields_without_a_tier_and_accepts_declared_ones() {
    let root = fixture(
        "r1-fields",
        &[(
            "crates/net/src/lib.rs",
            "pub struct Q {\n\
                 bare: std::sync::Mutex<u8>,\n\
                 // vsgm-lock-tier(1): leaf lock, nothing nests inside\n\
                 tiered: std::sync::Mutex<u8>,\n\
                 wrapped: std::sync::Arc<std::sync::RwLock<u8>>,\n\
                 cv: std::sync::Condvar,\n\
                 plain: u64,\n\
             }\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let r1: Vec<usize> =
        report.findings.iter().filter(|f| f.rule == "R1").map(|f| f.line).collect();
    assert_eq!(r1, vec![2, 5, 6], "bare/wrapped/cv need tiers, tiered and plain do not: {:?}", report.findings);
    assert!(
        report.findings.iter().any(|f| f.message.contains("`bare`")),
        "{:?}",
        report.findings
    );
}

#[test]
fn r1_flags_blocking_calls_under_a_held_guard() {
    let root = fixture(
        "r1-guard",
        &[(
            "crates/net/src/lib.rs",
            "pub fn held(m: &std::sync::Mutex<u8>) {\n\
                 let g = m.lock().unwrap();\n\
                 std::thread::sleep(std::time::Duration::from_millis(1));\n\
                 drop(g);\n\
             }\n\
             pub fn released(m: &std::sync::Mutex<u8>) {\n\
                 let g = m.lock().unwrap();\n\
                 drop(g);\n\
                 std::thread::sleep(std::time::Duration::from_millis(1));\n\
             }\n\
             pub fn copied_out(m: &std::sync::Mutex<Vec<u8>>) {\n\
                 let v = m.lock().unwrap().clone();\n\
                 std::thread::sleep(std::time::Duration::from_millis(v.len() as u64));\n\
             }\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let r1: Vec<usize> =
        report.findings.iter().filter(|f| f.rule == "R1").map(|f| f.line).collect();
    // Only the sleep at line 3 runs under a live guard: line 9 sleeps
    // after an explicit drop, line 13 bound a *clone* through a
    // statement-scoped guard temporary.
    assert_eq!(r1, vec![3], "{:?}", report.findings);
}

#[test]
fn r1_scrutinee_guards_live_for_their_block_and_condvar_wait_is_exempt() {
    let root = fixture(
        "r1-scrutinee",
        &[(
            "crates/net/src/lib.rs",
            "pub fn f(m: &std::sync::Mutex<Option<u8>>, cv: &std::sync::Condvar) {\n\
                 if let Ok(g) = m.lock() {\n\
                     std::thread::sleep(std::time::Duration::from_millis(1));\n\
                     let _g2 = cv.wait(g);\n\
                 }\n\
                 std::thread::sleep(std::time::Duration::from_millis(1));\n\
             }\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let r1: Vec<usize> =
        report.findings.iter().filter(|f| f.rule == "R1").map(|f| f.line).collect();
    // Line 3 sleeps inside the if-let (scrutinee temporaries live for
    // the whole block); line 4's condvar wait is the *correct* pattern
    // and exempt; line 6 is outside the block.
    assert_eq!(r1, vec![3], "{:?}", report.findings);
}

#[test]
fn r1_only_covers_the_net_crate() {
    let root = fixture(
        "r1-scope",
        &[("crates/harness/src/lib.rs", "pub struct S { m: std::sync::Mutex<u8> }\n")],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    assert!(
        !report.findings.iter().any(|f| f.rule == "R1"),
        "harness is not an R1 crate: {:?}",
        report.findings
    );
}

#[test]
fn r1_pins_the_event_loop_transport_modules_by_path() {
    // The event-loop core is pinned by file path, not just by crate: a
    // guard held across a blocking call there stalls every connection
    // the loop owns, so a future reorganization of R1_CRATES must not
    // silently drop these files.
    for pinned in
        ["crates/net/src/tcp.rs", "crates/net/src/evloop.rs", "crates/net/src/writer.rs"]
    {
        assert!(
            vsgm_analyze::rules::R1_FILES.contains(&pinned),
            "{pinned} must be pinned in R1_FILES: {:?}",
            vsgm_analyze::rules::R1_FILES
        );
    }
    // And the pin actually maps through to findings.
    let root = fixture(
        "r1-evloop-file",
        &[(
            "crates/net/src/evloop.rs",
            "pub struct L { inbox: std::sync::Mutex<Vec<u8>> }\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    assert!(
        report.findings.iter().any(|f| f.rule == "R1" && f.file.ends_with("evloop.rs")),
        "a tierless lock field in evloop.rs must be R1-covered: {:?}",
        report.findings
    );
}

#[test]
fn malformed_tier_declarations_are_reported_as_w0() {
    let root = fixture(
        "r1-bad-tier",
        &[(
            "crates/net/src/lib.rs",
            "pub struct Q {\n\
                 // vsgm-lock-tier(one): tier must be a number\n\
                 m: std::sync::Mutex<u8>,\n\
             }\n",
        )],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    // The malformed declaration does not count as a tier (R1 still
    // fires) and is itself flagged.
    assert_eq!(rules, vec!["W0", "R1"], "{:?}", report.findings);
}

// ---------------------------------------------------------------- T1 ---

#[test]
fn t1_flags_ambient_clock_reads_outside_the_net_crate() {
    let root = fixture(
        "t1-dirty",
        &[
            (
                // `harness` is in T1's scope but not D1's, isolating T1.
                "crates/harness/src/lib.rs",
                "pub fn a() -> std::time::Instant { std::time::Instant::now() }\n\
                 pub fn b(t: std::time::Instant) -> std::time::Duration { t.elapsed() }\n\
                 pub fn c() -> std::time::SystemTime { std::time::SystemTime::now() }\n",
            ),
            (
                "crates/net/src/clock.rs",
                "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
            ),
        ],
    );
    let report = analyze_root(&root, None).expect("analyze fixture");
    let t1: Vec<(&str, usize)> = report
        .findings
        .iter()
        .filter(|f| f.rule == "T1")
        .map(|f| (f.file.as_str(), f.line))
        .collect();
    assert_eq!(
        t1,
        vec![
            ("crates/harness/src/lib.rs", 1),
            ("crates/harness/src/lib.rs", 2),
            ("crates/harness/src/lib.rs", 3),
        ],
        "all three harness reads flagged, net exempt: {:?}",
        report.findings
    );
}

// ------------------------------------------------------ stale waivers ---

#[test]
fn waivers_that_suppress_nothing_are_flagged_stale() {
    // The code under the waiver was fixed, the waiver forgotten.
    let report = analyze_one(
        "waive-stale",
        "// vsgm-allow(D1): was a HashMap once\n\
         use std::collections::BTreeMap;\n\
         pub type T = BTreeMap<u8, u8>;\n",
    );
    let w0: Vec<&vsgm_analyze::Finding> =
        report.findings.iter().filter(|f| f.rule == "W0").collect();
    assert_eq!(w0.len(), 1, "{:?}", report.findings);
    let f = w0.first().expect("checked nonempty");
    assert!(f.message.contains("suppresses no finding"), "{}", f.message);
    assert_eq!(f.line, 1);
}

#[test]
fn stale_waiver_detection_needs_the_full_rule_set() {
    // With only P1 selected, a D1 waiver's target rule never ran, so
    // staleness cannot be judged — no W0 is emitted.
    let root = fixture(
        "waive-stale-selected",
        &[(
            "crates/core/src/lib.rs",
            "// vsgm-allow(D1): was a HashMap once\npub fn f() {}\n",
        )],
    );
    let only_p1: BTreeSet<String> = ["P1".to_string(), "W0".to_string()].into_iter().collect();
    let report = analyze_root(&root, Some(&only_p1)).expect("analyze fixture");
    assert!(report.is_clean(), "{:?}", report.findings);
}

// -------------------------------------------------------- real tree ---

/// The gate `scripts/check.sh` relies on: the workspace itself carries
/// zero unwaived findings, and its waivers are each justified in-source.
#[test]
fn real_workspace_is_clean() {
    let report = analyze_root(&repo_root(), None).expect("analyze the workspace");
    assert!(
        report.is_clean(),
        "the workspace must stay analyzer-clean:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 50, "walked the whole tree");
    assert!(report.waived >= 1, "the known transport/oracle waivers are counted");
}

/// The waiver budget, pinned per rule. Growing it is a reviewed event:
/// a new waiver must both carry an in-source justification *and* bump
/// the count here. (Shrinking is always welcome — the stale-waiver W0
/// sweep deletes the comment for you.)
#[test]
fn real_workspace_waiver_budget_is_pinned() {
    let report = analyze_root(&repo_root(), None).expect("analyze the workspace");
    let budget: Vec<(&str, usize)> =
        report.waived_by_rule.iter().map(|(r, n)| (r.as_str(), *n)).collect();
    assert_eq!(
        budget,
        vec![("D1", 3), ("P1", 9), ("R1", 1), ("T1", 4)],
        "the per-rule waiver counts moved — audit the new/removed waiver and re-pin"
    );
    assert_eq!(report.waived, 17);
    // All eight rules are registered (so `--rules R1,T1` is accepted).
    let ids: Vec<&str> = vsgm_analyze::rules::RULES.iter().map(|(r, _)| *r).collect();
    assert_eq!(ids, vec!["D1", "P1", "I1", "C1", "R1", "T1", "A1", "W0"]);
}

// ---------------------------------------------------------------- A1 ---

/// A fixture `State` with one audited and one unaudited field, plus an
/// audit pass that reads only the former.
fn a1_fixture(name: &str, state_extra: &str) -> PathBuf {
    fixture(
        name,
        &[
            (
                "crates/core/src/state.rs",
                &format!(
                    "pub struct Other {{ pub ghost_free: u64 }}\n\
                     pub struct State {{\n\
                         pub pid: u64,\n\
                         pub msgs: std::collections::BTreeMap<u64, u64>,\n\
                         {state_extra}\n\
                     }}\n"
                ),
            ),
            (
                "crates/core/src/audit.rs",
                "pub fn check(st: &crate::state::State) -> bool {\n\
                     st.pid == 0 && st.msgs.is_empty()\n\
                 }\n",
            ),
        ],
    )
}

#[test]
fn a1_flags_state_fields_the_audit_never_reads() {
    let root = a1_fixture("a1-blind-spot", "pub ghost: u64,");
    let only_a1: BTreeSet<String> = ["A1".to_string()].into_iter().collect();
    let report = analyze_root(&root, Some(&only_a1)).expect("analyze fixture");
    let hits: Vec<(&str, usize)> =
        report.findings.iter().map(|f| (f.rule.as_str(), f.line)).collect();
    // `ghost` (line 5 of state.rs) is unaudited; `pid`/`msgs` are read,
    // and `ghost_free` belongs to a different struct — not A1's concern.
    assert_eq!(hits, vec![("A1", 5)], "{:?}", report.findings);
    let f = report.findings.first().expect("one finding");
    assert_eq!(f.file, "crates/core/src/state.rs");
    assert!(f.message.contains("`ghost`"), "{}", f.message);
}

#[test]
fn a1_accepts_a_waived_blind_spot() {
    let root = a1_fixture(
        "a1-waived",
        "// vsgm-allow(A1): fixture field, corruption here is benign\n\
         pub ghost: u64,",
    );
    let only_a1: BTreeSet<String> = ["A1".to_string()].into_iter().collect();
    let report = analyze_root(&root, Some(&only_a1)).expect("analyze fixture");
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.waived, 1);
}
