//! **vsgm-baseline** — a traditional *two-round, pre-agreement* virtually
//! synchronous multicast end-point, the comparison arm for the paper's
//! headline claim.
//!
//! Previously suggested virtual-synchrony algorithms (the paper's
//! references \[7, 22\]) have processes first agree on a **globally unique
//! identifier** (round 1: all-to-all proposals deterministically merged
//! into a tag), and only then exchange synchronization messages labeled
//! with that tag (round 2). The paper's algorithm eliminates round 1 by
//! tagging synchronization messages with *locally* unique start-change
//! ids and letting the membership view's `startId` map select them.
//!
//! [`BaselineEndpoint`] implements the two-round scheme behind the same
//! [`GroupEndpoint`] interface as the paper's algorithm, over the same
//! `CO_RFIFO` substrate and membership notifications, so the experiment
//! harness can run both under identical scenarios and measure:
//!
//! * one extra message round per view change (E1/E2);
//! * zero application deliveries during reconfiguration — the baseline
//!   conservatively blocks delivery while agreement is running, whereas
//!   the paper's algorithm keeps delivering (E4);
//! * installation of soon-to-be-obsolete views under cascaded membership
//!   changes, which the paper's `startId` precondition rules out (E3).
//!
//! Scope: the baseline is faithful for clean, fully connected view
//! changes (what the comparative experiments use). It does not implement
//! message forwarding, and under adversarial cascade timings its
//! transitional sets can be inconsistent — limitations shared by the
//! simple pre-agreement schemes it models, and part of why the paper's
//! design is preferable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use vsgm_core::state::State;
use vsgm_core::{wv, Effect, GroupEndpoint, Input};
use vsgm_types::{
    BaselineMsg, Cut, MsgIndex, NetMsg, ProcSet, ProcessId, View,
};

/// A globally unique agreement tag: `(max proposed seq, proposer id)`.
pub type Tag = (u64, u64);

#[derive(Debug, Clone, Default)]
struct Round {
    /// Max-merged proposal sequence numbers, per participant.
    proposals: BTreeMap<ProcessId, u64>,
    /// Received (and own) tagged synchronization messages.
    syncs: BTreeMap<(ProcessId, Tag), (View, Cut)>,
    /// The local change counter value our latest proposal answered.
    own_change: u64,
    /// Tags for which we already sent our sync.
    synced: BTreeSet<Tag>,
}

impl Round {
    /// The agreed tag, once proposals from every participant are in.
    fn tag(&self, participants: &ProcSet) -> Option<Tag> {
        if !participants.iter().all(|q| self.proposals.contains_key(q)) {
            return None;
        }
        self.proposals.iter().map(|(q, seq)| (*seq, q.raw())).max()
    }
}

/// The pre-agreement baseline end-point.
///
/// Reuses the `WV_RFIFO` machinery of `vsgm-core` verbatim (the
/// within-view FIFO layer is identical in both designs); only the view
/// synchronization differs.
///
/// ```
/// use vsgm_baseline::BaselineEndpoint;
/// use vsgm_core::{GroupEndpoint, Input};
/// use vsgm_types::{ProcessId, StartChangeId};
///
/// let mut ep = BaselineEndpoint::new(ProcessId::new(1));
/// ep.handle(Input::StartChange {
///     cid: StartChangeId::new(1),
///     set: [ProcessId::new(1)].into_iter().collect(),
/// });
/// assert!(ep.reconfiguring());
/// ```
#[derive(Debug, Clone)]
pub struct BaselineEndpoint {
    st: State,
    /// Monotone proposal counter.
    seq: u64,
    /// Local count of `start_change` notifications (drives re-proposals
    /// on cascades).
    changes_seen: u64,
    rounds: HashMap<ProcSet, Round>,
}

impl BaselineEndpoint {
    /// Creates a baseline end-point in its initial singleton view.
    pub fn new(pid: ProcessId) -> Self {
        BaselineEndpoint { st: State::new(pid), seq: 0, changes_seen: 0, rounds: HashMap::new() }
    }

    /// Read access to the shared state (tests).
    pub fn state(&self) -> &State {
        &self.st
    }

    /// Participant sets we currently need agreement for: the pending
    /// change's suggestion, plus the member set of a pending membership
    /// view when it differs (re-agreement fallback).
    fn agreement_targets(&self) -> Vec<ProcSet> {
        let mut out = Vec::new();
        if let Some((_, sc_set)) = &self.st.start_change {
            out.push(sc_set.clone());
            if self.st.mbrshp_view.id() > self.st.current_view.id()
                && self.st.mbrshp_view.members() != sc_set
            {
                out.push(self.st.mbrshp_view.members().clone());
            }
        }
        out
    }

    fn reliable_target(&self) -> ProcSet {
        let mut set = self.st.current_view.members().clone();
        for s in self.agreement_targets() {
            set.extend(s);
        }
        set
    }

    fn blocked(&self) -> bool {
        self.st.block_status == vsgm_core::state::BlockStatus::Blocked
    }

    /// Proposal sends that are currently due.
    fn due_proposals(&self) -> Vec<ProcSet> {
        if !self.blocked() {
            return Vec::new();
        }
        self.agreement_targets()
            .into_iter()
            .filter(|s| {
                s.iter().all(|q| self.st.reliable_set.contains(q))
                    && self
                        .rounds
                        .get(s)
                        .is_none_or(|r| r.own_change < self.changes_seen)
            })
            .collect()
    }

    /// Tagged-sync sends that are currently due: `(participants, tag)`.
    fn due_syncs(&self) -> Vec<(ProcSet, Tag)> {
        if !self.blocked() {
            return Vec::new();
        }
        self.agreement_targets()
            .into_iter()
            .filter_map(|s| {
                let r = self.rounds.get(&s)?;
                let tag = r.tag(&s)?;
                if r.synced.contains(&tag) {
                    None
                } else {
                    Some((s, tag))
                }
            })
            .collect()
    }

    /// The delivery bound while reconfiguring: the max committed cut for
    /// `q` over current-tag, same-view syncs — or `Some(dlvrd)` (i.e. "no
    /// further delivery") while agreement is still running. `None` when
    /// no change is pending.
    fn delivery_bound(&self, q: ProcessId) -> Option<MsgIndex> {
        let (_, sc_set) = self.st.start_change.as_ref()?;
        let r = self.rounds.get(sc_set)?;
        let Some(tag) = r.tag(sc_set) else {
            return Some(self.st.dlvrd(q)); // agreement running: fully blocked
        };
        if !r.synced.contains(&tag) {
            return Some(self.st.dlvrd(q));
        }
        let bound = r
            .syncs
            .iter()
            .filter(|((_, t), (v, _))| *t == tag && v == &self.st.current_view)
            .map(|(_, (_, cut))| cut.get(q))
            .max()
            .unwrap_or(self.st.dlvrd(q));
        Some(bound)
    }

    /// Install precondition: view pending, agreement for its member set
    /// complete, tagged syncs from every continuing member present, and
    /// exactly the agreed cut delivered. Returns the transitional set.
    fn installable(&self) -> Option<ProcSet> {
        let v = &self.st.mbrshp_view;
        if v.id() <= self.st.current_view.id() {
            return None;
        }
        let r = self.rounds.get(v.members())?;
        let tag = r.tag(v.members())?;
        let mut t = ProcSet::new();
        for q in v.intersection(&self.st.current_view) {
            let (qv, _) = r.syncs.get(&(q, tag))?;
            if qv == &self.st.current_view {
                t.insert(q);
            }
        }
        for q in self.st.current_view.members() {
            let agreed = t
                .iter()
                .filter_map(|u| r.syncs.get(&(*u, tag)).map(|(_, c)| c.get(*q)))
                .max()
                .unwrap_or(0);
            if self.st.dlvrd(*q) != agreed {
                return None;
            }
        }
        Some(t)
    }

    /// Fires every enabled locally controlled action once; returns the
    /// effects and whether anything fired.
    fn step(&mut self) -> (Vec<Effect>, bool) {
        let mut effects = Vec::new();
        if self.st.crashed {
            return (effects, false);
        }
        let pid = self.st.pid;

        // reliable
        let target = self.reliable_target();
        if target != self.st.reliable_set {
            self.st.reliable_set = target.clone();
            effects.push(Effect::SetReliable(target));
            return (effects, true);
        }
        // view_msg
        if wv::send_view_msg_pre(&self.st) {
            let (set, msg) = wv::send_view_msg_eff(&mut self.st);
            if !set.is_empty() {
                effects.push(Effect::NetSend { to: set, msg });
            }
            return (effects, true);
        }
        // block
        if self.st.start_change.is_some()
            && self.st.block_status == vsgm_core::state::BlockStatus::Unblocked
        {
            self.st.block_status = vsgm_core::state::BlockStatus::Requested;
            effects.push(Effect::Block);
            return (effects, true);
        }
        // round 1: proposals
        if let Some(participants) = self.due_proposals().into_iter().next() {
            self.seq += 1;
            let seq = self.seq;
            let r = self.rounds.entry(participants.clone()).or_default();
            let prev = r.proposals.entry(pid).or_insert(0);
            *prev = (*prev).max(seq);
            r.own_change = self.changes_seen;
            let to: ProcSet = participants.iter().copied().filter(|q| *q != pid).collect();
            if !to.is_empty() {
                effects.push(Effect::NetSend {
                    to,
                    msg: NetMsg::Baseline(BaselineMsg::Propose { participants, seq }),
                });
            }
            return (effects, true);
        }
        // round 2: tagged syncs
        if let Some((participants, tag)) = self.due_syncs().into_iter().next() {
            let view = self.st.current_view.clone();
            let cut = self.st.commit_cut();
            let r = self.rounds.entry(participants.clone()).or_default();
            r.syncs.insert((pid, tag), (view.clone(), cut.clone()));
            r.synced.insert(tag);
            let to: ProcSet = participants.iter().copied().filter(|q| *q != pid).collect();
            if !to.is_empty() {
                effects.push(Effect::NetSend {
                    to,
                    msg: NetMsg::Baseline(BaselineMsg::Sync { participants, tag, view, cut }),
                });
            }
            return (effects, true);
        }
        // app multicast
        if let Some((set, msg)) = wv::send_app_msg_eff(&mut self.st) {
            if !set.is_empty() {
                effects.push(Effect::NetSend { to: set, msg });
            }
            return (effects, true);
        }
        // deliveries
        let members: Vec<ProcessId> = self.st.current_view.members().iter().copied().collect();
        for q in members {
            if let Some(m) = wv::deliver_pre(&self.st, q) {
                let allowed = match self.delivery_bound(q) {
                    None => true,
                    Some(bound) => self.st.dlvrd(q) < bound,
                };
                if allowed {
                    wv::deliver_eff(&mut self.st, q);
                    effects.push(Effect::DeliverApp { from: q, msg: m });
                    return (effects, true);
                }
            }
        }
        // view installation
        if let Some(t) = self.installable() {
            let installed_members = self.st.mbrshp_view.members().clone();
            wv::view_eff(&mut self.st);
            // The change is only over if no newer start_change arrived
            // since we proposed for this round (cascades restart it).
            let round_change =
                self.rounds.remove(&installed_members).map_or(0, |r| r.own_change);
            let done = match &self.st.start_change {
                Some((_, sc_set)) => {
                    *sc_set == installed_members && round_change == self.changes_seen
                }
                None => true,
            };
            if done {
                self.st.start_change = None;
                self.st.block_status = vsgm_core::state::BlockStatus::Unblocked;
            }
            effects.push(Effect::InstallView {
                view: self.st.current_view.clone(),
                transitional: t,
            });
            return (effects, true);
        }
        (effects, false)
    }
}

impl GroupEndpoint for BaselineEndpoint {
    fn pid(&self) -> ProcessId {
        self.st.pid
    }

    fn handle(&mut self, input: Input) -> Vec<Effect> {
        if self.st.crashed {
            if input == Input::Recover {
                self.st.reset();
                self.seq = 0;
                self.changes_seen = 0;
                self.rounds.clear();
            }
            return Vec::new();
        }
        match input {
            Input::AppSend(m) => wv::on_app_send(&mut self.st, m),
            Input::BlockOk => self.st.block_status = vsgm_core::state::BlockStatus::Blocked,
            Input::StartChange { cid, set } => {
                self.changes_seen += 1;
                self.st.start_change = Some((cid, set));
            }
            Input::MbrshpView(v) => wv::on_mbrshp_view(&mut self.st, v),
            Input::Net { from, msg } => match msg {
                NetMsg::ViewMsg(v) => wv::on_view_msg(&mut self.st, from, v),
                NetMsg::App(m) => wv::on_app_msg(&mut self.st, from, m),
                NetMsg::AppBatch(batch) => {
                    for m in batch {
                        wv::on_app_msg(&mut self.st, from, m);
                    }
                }
                NetMsg::Fwd(f) => wv::on_fwd_msg(&mut self.st, f),
                NetMsg::Baseline(BaselineMsg::Propose { participants, seq }) => {
                    let r = self.rounds.entry(participants).or_default();
                    let e = r.proposals.entry(from).or_insert(0);
                    *e = (*e).max(seq);
                }
                NetMsg::Baseline(BaselineMsg::Sync { participants, tag, view, cut }) => {
                    let r = self.rounds.entry(participants).or_default();
                    r.syncs.insert((from, tag), (view, cut));
                }
                // The paper's protocol messages are not ours.
                NetMsg::Sync(_) | NetMsg::SyncAgg(_) => {}
            },
            Input::Crash => self.st.crashed = true,
            Input::Recover => {}
            // The baseline has no batching stage; its clock is unused.
            Input::Tick(_) => {}
        }
        Vec::new()
    }

    fn poll(&mut self) -> Vec<Effect> {
        let mut out = Vec::new();
        for _ in 0..1_000_000 {
            let (effects, progress) = self.step();
            out.extend(effects);
            if !progress {
                return out;
            }
        }
        panic!("baseline endpoint livelock");
    }

    fn current_view(&self) -> &View {
        &self.st.current_view
    }

    fn reconfiguring(&self) -> bool {
        self.st.start_change.is_some()
    }

    fn is_crashed(&self) -> bool {
        self.st.crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as StdHashMap;
    use vsgm_types::{AppMsg, StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// Instant-routing harness mirroring the one in vsgm-core's tests.
    struct Net {
        eps: StdHashMap<ProcessId, BaselineEndpoint>,
        delivered: Vec<(ProcessId, ProcessId, AppMsg)>,
        views: Vec<(ProcessId, View, ProcSet)>,
        msgs_by_tag: StdHashMap<&'static str, u64>,
    }

    impl Net {
        fn new(ids: &[u64]) -> Self {
            Net {
                eps: ids.iter().map(|&i| (p(i), BaselineEndpoint::new(p(i)))).collect(),
                delivered: Vec::new(),
                views: Vec::new(),
                msgs_by_tag: StdHashMap::new(),
            }
        }

        fn input(&mut self, to: u64, input: Input) {
            let effects = self.eps.get_mut(&p(to)).unwrap().handle(input);
            self.route(p(to), effects);
        }

        fn settle(&mut self) {
            for _ in 0..1000 {
                let mut progress = false;
                let ids: Vec<ProcessId> = self.eps.keys().copied().collect();
                for id in ids {
                    let effects = self.eps.get_mut(&id).unwrap().poll();
                    if !effects.is_empty() {
                        progress = true;
                        self.route(id, effects);
                    }
                }
                if !progress {
                    return;
                }
            }
            panic!("did not settle");
        }

        fn route(&mut self, from: ProcessId, effects: Vec<Effect>) {
            for e in effects {
                match e {
                    Effect::NetSend { to, msg } => {
                        *self.msgs_by_tag.entry(msg.tag()).or_insert(0) += to.len() as u64;
                        for dest in to {
                            if dest == from {
                                continue;
                            }
                            let more = self
                                .eps
                                .get_mut(&dest)
                                .unwrap()
                                .handle(Input::Net { from, msg: msg.clone() });
                            self.route(dest, more);
                        }
                    }
                    Effect::DeliverApp { from: sender, msg } => {
                        self.delivered.push((from, sender, msg));
                    }
                    Effect::InstallView { view, transitional } => {
                        self.views.push((from, view, transitional));
                    }
                    Effect::Block => {
                        let more = self.eps.get_mut(&from).unwrap().handle(Input::BlockOk);
                        self.route(from, more);
                    }
                    Effect::SetReliable(_) => {}
                    Effect::Reconciled => {}
                }
            }
        }

        fn reconfigure(&mut self, members: &[u64], epoch: u64, cid: u64) -> View {
            let member_set = set(members);
            for &m in members {
                self.input(
                    m,
                    Input::StartChange { cid: StartChangeId::new(cid), set: member_set.clone() },
                );
            }
            self.settle();
            let view = View::new(
                ViewId::new(epoch, 0),
                member_set.iter().copied(),
                member_set.iter().map(|m| (*m, StartChangeId::new(cid))),
            );
            for &m in members {
                self.input(m, Input::MbrshpView(view.clone()));
            }
            self.settle();
            view
        }
    }

    #[test]
    fn two_endpoints_form_view() {
        let mut net = Net::new(&[1, 2]);
        net.reconfigure(&[1, 2], 1, 1);
        assert_eq!(net.views.len(), 2, "{:?}", net.views);
    }

    #[test]
    fn two_rounds_of_messages_per_change() {
        let mut net = Net::new(&[1, 2, 3]);
        net.reconfigure(&[1, 2, 3], 1, 1);
        // Both message kinds present: proposals AND tagged syncs — the
        // extra round the paper's algorithm eliminates.
        assert_eq!(net.msgs_by_tag["bl_propose"], 6, "{:?}", net.msgs_by_tag);
        assert_eq!(net.msgs_by_tag["bl_sync"], 6, "{:?}", net.msgs_by_tag);
    }

    #[test]
    fn multicast_works_between_changes() {
        let mut net = Net::new(&[1, 2]);
        net.reconfigure(&[1, 2], 1, 1);
        net.input(1, Input::AppSend(AppMsg::from("x")));
        net.settle();
        assert_eq!(net.delivered.len(), 2); // both deliver (self + peer)
    }

    #[test]
    fn transitional_sets_on_joint_move() {
        let mut net = Net::new(&[1, 2]);
        net.reconfigure(&[1, 2], 1, 1);
        net.views.clear();
        net.reconfigure(&[1, 2], 2, 2);
        for (_, _, t) in &net.views {
            assert_eq!(t, &set(&[1, 2]), "{:?}", net.views);
        }
    }

    #[test]
    fn deliveries_blocked_while_agreement_runs() {
        let mut net = Net::new(&[1, 2]);
        net.reconfigure(&[1, 2], 1, 1);
        net.input(1, Input::AppSend(AppMsg::from("pre")));
        net.settle();
        net.delivered.clear();
        // Message in flight while a change starts, but we do not settle in
        // between: feed start_change to p2 only, so agreement cannot
        // complete (p1 never proposes).
        net.input(2, Input::StartChange { cid: StartChangeId::new(2), set: set(&[1, 2]) });
        net.input(1, Input::AppSend(AppMsg::from("during")));
        // Deliver p2's poll: it is blocked, so nothing reaches its app.
        let effects = net.eps.get_mut(&p(2)).unwrap().poll();
        assert!(
            !effects.iter().any(|e| matches!(e, Effect::DeliverApp { .. })),
            "baseline must not deliver while agreement is pending: {effects:?}"
        );
    }

    #[test]
    fn installs_obsolete_views_under_cascades() {
        // The behavior E3 quantifies: the baseline installs a view even
        // when a newer start_change is already known.
        let mut net = Net::new(&[1, 2]);
        net.reconfigure(&[1, 2], 1, 1);
        net.views.clear();
        // Change 2 starts and agreement completes...
        let members = set(&[1, 2]);
        for m in [1, 2] {
            net.input(m, Input::StartChange { cid: StartChangeId::new(2), set: members.clone() });
        }
        net.settle();
        // ...then change 3 is announced BEFORE view 2 arrives.
        for m in [1, 2] {
            net.input(m, Input::StartChange { cid: StartChangeId::new(3), set: members.clone() });
        }
        // View 2 (now obsolete) arrives: the baseline installs it anyway.
        let view2 = View::new(
            ViewId::new(2, 0),
            members.iter().copied(),
            members.iter().map(|m| (*m, StartChangeId::new(2))),
        );
        for m in [1, 2] {
            net.input(m, Input::MbrshpView(view2.clone()));
        }
        net.settle();
        assert_eq!(net.views.len(), 2, "baseline installs the obsolete view: {:?}", net.views);
        // A restart-style membership then re-runs the whole protocol for
        // the next change: a fresh start_change and the final view.
        for m in [1, 2] {
            net.input(m, Input::StartChange { cid: StartChangeId::new(4), set: members.clone() });
        }
        net.settle();
        let view3 = View::new(
            ViewId::new(3, 0),
            members.iter().copied(),
            members.iter().map(|m| (*m, StartChangeId::new(4))),
        );
        for m in [1, 2] {
            net.input(m, Input::MbrshpView(view3.clone()));
        }
        net.settle();
        assert_eq!(net.views.len(), 4, "{:?}", net.views);
    }

    #[test]
    fn crash_and_recover_reset() {
        let mut ep = BaselineEndpoint::new(p(1));
        ep.handle(Input::StartChange { cid: StartChangeId::new(1), set: set(&[1]) });
        ep.handle(Input::Crash);
        assert!(ep.is_crashed());
        assert!(ep.poll().is_empty());
        ep.handle(Input::Recover);
        assert!(!ep.is_crashed());
        assert!(!ep.reconfiguring());
    }
}
