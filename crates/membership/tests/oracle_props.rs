//! Property tests: every notification stream the membership oracle can
//! produce — under arbitrary interleavings of cascaded changes, partial
//! notifications, partitioned concurrent views, and recoveries — satisfies
//! the `MBRSHP` specification automaton (Fig. 2).

use proptest::prelude::*;
use vsgm_ioa::{Checker, SimTime, TraceEntry};
use vsgm_membership::MembershipOracle;
use vsgm_spec::MbrshpSpec;
use vsgm_types::{Event, ProcSet, ProcessId};

const N: u64 = 5;

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn mask_to_set(mask: u8) -> ProcSet {
    (0..N).filter(|i| mask & (1 << i) != 0).map(|i| p(i + 1)).collect()
}

#[derive(Debug, Clone)]
enum OracleOp {
    /// start_change suggesting the mask set (to all of it).
    StartChange(u8),
    /// start_change to a subset of the suggestion (partial notification).
    PartialStartChange(u8, u8),
    /// Form a view among the subset of the last suggestion, with a
    /// proposer tie-breaker.
    FormView(u8, u8),
    /// Crash + recover a process (resets its mode).
    Bounce(u64),
}

fn op_strategy() -> impl Strategy<Value = OracleOp> {
    prop_oneof![
        3 => (1u8..32).prop_map(OracleOp::StartChange),
        2 => ((1u8..32), (1u8..32)).prop_map(|(t, s)| OracleOp::PartialStartChange(t, s)),
        3 => ((1u8..32), (0u8..4)).prop_map(|(m, pr)| OracleOp::FormView(m, pr)),
        1 => (0u64..N).prop_map(OracleOp::Bounce),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn oracle_output_always_satisfies_mbrshp_spec(
        ops in prop::collection::vec(op_strategy(), 1..30),
    ) {
        let mut oracle = MembershipOracle::new();
        let mut spec = MbrshpSpec::new();
        let mut step = 0u64;
        let mut proposer_seq = 10u64;
        let feed = |spec: &mut MbrshpSpec, step: &mut u64, event: Event| {
            let entry = TraceEntry { step: *step, time: SimTime::ZERO, event };
            *step += 1;
            spec.observe(&entry).expect("oracle must be spec-compliant");
        };
        for op in &ops {
            match op {
                OracleOp::StartChange(mask) => {
                    let set = mask_to_set(*mask);
                    for n in oracle.start_change(&set) {
                        feed(&mut spec, &mut step, Event::MbrshpStartChange {
                            p: n.p, cid: n.cid, set: n.set,
                        });
                    }
                }
                OracleOp::PartialStartChange(targets, suggested) => {
                    let sugg = mask_to_set(*targets | *suggested);
                    let targ: ProcSet =
                        mask_to_set(*targets).intersection(&sugg).copied().collect();
                    if targ.is_empty() { continue; }
                    for n in oracle.start_change_for(&targ, &sugg) {
                        feed(&mut spec, &mut step, Event::MbrshpStartChange {
                            p: n.p, cid: n.cid, set: n.set,
                        });
                    }
                }
                OracleOp::FormView(mask, proposer) => {
                    // Members must all have a pending change covering the
                    // member set; restrict to processes with pending
                    // changes whose suggestion covers the candidate set.
                    let candidates = mask_to_set(*mask);
                    let pending: ProcSet = candidates
                        .iter()
                        .copied()
                        .filter(|q| oracle.change_pending(*q))
                        .collect();
                    if pending.is_empty() { continue; }
                    // Issue a covering cascade so form_view's precondition
                    // holds (the oracle panics otherwise — the scenario,
                    // not the oracle, is responsible for coverage).
                    for n in oracle.start_change(&pending) {
                        feed(&mut spec, &mut step, Event::MbrshpStartChange {
                            p: n.p, cid: n.cid, set: n.set,
                        });
                    }
                    proposer_seq += 1;
                    let v = oracle.form_view(&pending, proposer_seq + *proposer as u64);
                    for m in &pending {
                        feed(&mut spec, &mut step, Event::MbrshpView {
                            p: *m, view: v.clone(),
                        });
                    }
                }
                OracleOp::Bounce(i) => {
                    let q = p(1 + i % N);
                    feed(&mut spec, &mut step, Event::Crash { p: q });
                    oracle.recover(q);
                    feed(&mut spec, &mut step, Event::Recover { p: q });
                }
            }
        }
    }

    #[test]
    fn concurrent_partitioned_views_never_violate_monotonicity(
        splits in prop::collection::vec(1u64..N, 1..8),
    ) {
        let mut oracle = MembershipOracle::new();
        let mut spec = MbrshpSpec::new();
        let mut step = 0u64;
        let feed = |spec: &mut MbrshpSpec, step: &mut u64, event: Event| {
            let entry = TraceEntry { step: *step, time: SimTime::ZERO, event };
            *step += 1;
            spec.observe(&entry).expect("spec holds");
        };
        let everyone: ProcSet = (1..=N).map(p).collect();
        let mut proposer = 0u64;
        for split in splits {
            // Split into two components, each forms a view, then merge.
            let a: ProcSet = (1..=split).map(p).collect();
            let b: ProcSet = (split + 1..=N).map(p).collect();
            for (grp, tag) in [(a, 0u64), (b, 1)] {
                if grp.is_empty() { continue; }
                for n in oracle.start_change_for(&grp, &grp) {
                    feed(&mut spec, &mut step, Event::MbrshpStartChange {
                        p: n.p, cid: n.cid, set: n.set,
                    });
                }
                proposer += 1;
                let v = oracle.form_view(&grp, proposer * 2 + tag);
                for m in &grp {
                    feed(&mut spec, &mut step, Event::MbrshpView { p: *m, view: v.clone() });
                }
            }
            for n in oracle.start_change(&everyone) {
                feed(&mut spec, &mut step, Event::MbrshpStartChange {
                    p: n.p, cid: n.cid, set: n.set,
                });
            }
            proposer += 1;
            let merged = oracle.form_view(&everyone, proposer * 2);
            for m in &everyone {
                feed(&mut spec, &mut step, Event::MbrshpView { p: *m, view: merged.clone() });
            }
        }
    }
}
