//! Multi-server membership scenarios: three and four servers, server
//! exclusion, asymmetric estimates, and spec compliance throughout.

use std::collections::{HashMap, VecDeque};
use vsgm_ioa::{Checker, SimTime, TraceEntry};
use vsgm_membership::{Server, ServerOutput};
use vsgm_spec::MbrshpSpec;
use vsgm_types::{Event, ProcSet, ProcessId, View};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn set(ids: &[u64]) -> ProcSet {
    ids.iter().map(|&i| p(i)).collect()
}

/// Instant router with spec checking (mirrors the in-crate test helper
/// but supports arbitrary server counts and per-call routing scopes).
struct Cluster {
    servers: Vec<Server>,
    spec: MbrshpSpec,
    step: u64,
    views: Vec<(ProcessId, View)>,
}

impl Cluster {
    fn new(layout: &[(u64, &[u64])]) -> Self {
        Cluster {
            servers: layout
                .iter()
                .map(|(sid, cs)| Server::new(p(*sid), cs.iter().map(|&c| p(c))))
                .collect(),
            spec: MbrshpSpec::new(),
            step: 0,
            views: Vec::new(),
        }
    }

    fn feed_spec(&mut self, event: Event) {
        let entry = TraceEntry { step: self.step, time: SimTime::ZERO, event };
        self.step += 1;
        self.spec.observe(&entry).expect("MBRSHP spec holds");
    }

    fn route(&mut self, outputs: Vec<ServerOutput>) {
        let mut queue: VecDeque<ServerOutput> = outputs.into();
        while let Some(out) = queue.pop_front() {
            match out {
                ServerOutput::StartChange(n) => {
                    self.feed_spec(Event::MbrshpStartChange { p: n.p, cid: n.cid, set: n.set });
                }
                ServerOutput::View { client, view } => {
                    self.feed_spec(Event::MbrshpView { p: client, view: view.clone() });
                    self.views.push((client, view));
                }
                ServerOutput::Broadcast { to, msg } => {
                    for dest in &to {
                        if let Some(srv) = self.servers.iter_mut().find(|s| s.id() == *dest) {
                            let more = srv.handle(msg.clone());
                            queue.extend(more);
                        }
                    }
                }
            }
        }
    }

    fn connect(&mut self, servers: &ProcSet, alive: &ProcSet) {
        for i in 0..self.servers.len() {
            if servers.contains(&self.servers[i].id()) {
                let outs = self.servers[i].set_connectivity(servers.clone(), alive.clone());
                self.route(outs);
            }
        }
    }

    fn last_views(&self) -> HashMap<ProcessId, View> {
        let mut out = HashMap::new();
        for (c, v) in &self.views {
            out.insert(*c, v.clone());
        }
        out
    }
}

#[test]
fn three_servers_agree() {
    let mut c = Cluster::new(&[(100, &[1, 2]), (200, &[3, 4]), (300, &[5, 6])]);
    c.connect(&set(&[100, 200, 300]), &set(&[1, 2, 3, 4, 5, 6]));
    let last = c.last_views();
    assert_eq!(last.len(), 6);
    let reference = &last[&p(1)];
    assert_eq!(reference.members(), &set(&[1, 2, 3, 4, 5, 6]));
    assert!(last.values().all(|v| v == reference), "{last:?}");
}

#[test]
fn server_exclusion_shrinks_membership() {
    let mut c = Cluster::new(&[(100, &[1, 2]), (200, &[3, 4]), (300, &[5, 6])]);
    c.connect(&set(&[100, 200, 300]), &set(&[1, 2, 3, 4, 5, 6]));
    c.views.clear();
    // Server 300 becomes unreachable; the remaining two re-agree without
    // its clients.
    c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
    let last = c.last_views();
    for i in 1..=4 {
        assert_eq!(last[&p(i)].members(), &set(&[1, 2, 3, 4]), "client {i}");
    }
    // 300's clients saw nothing new.
    assert!(!last.contains_key(&p(5)) && !last.contains_key(&p(6)), "{last:?}");
}

#[test]
fn excluded_server_rejoins() {
    let mut c = Cluster::new(&[(100, &[1]), (200, &[2]), (300, &[3])]);
    let all_servers = set(&[100, 200, 300]);
    c.connect(&all_servers, &set(&[1, 2, 3]));
    c.connect(&set(&[100, 200]), &set(&[1, 2]));
    // 300 alone forms a singleton-ish view for its client.
    c.connect(&set(&[300]), &set(&[3]));
    c.views.clear();
    // Everyone reconnects.
    c.connect(&all_servers, &set(&[1, 2, 3]));
    let last = c.last_views();
    assert_eq!(last.len(), 3, "views so far: {:?}", c.views);
    let reference = &last[&p(1)];
    assert_eq!(reference.members(), &set(&[1, 2, 3]));
    assert!(last.values().all(|v| v == reference));
}

#[test]
fn four_servers_pairwise_partitions_and_merge() {
    let mut c =
        Cluster::new(&[(100, &[1]), (200, &[2]), (300, &[3]), (400, &[4])]);
    c.connect(&set(&[100, 200, 300, 400]), &set(&[1, 2, 3, 4]));
    // Two pairs.
    c.connect(&set(&[100, 200]), &set(&[1, 2]));
    c.connect(&set(&[300, 400]), &set(&[3, 4]));
    let last = c.last_views();
    assert_eq!(last[&p(1)].members(), &set(&[1, 2]));
    assert_eq!(last[&p(3)].members(), &set(&[3, 4]));
    assert_ne!(last[&p(1)].id(), last[&p(3)].id());
    // Merge.
    c.views.clear();
    c.connect(&set(&[100, 200, 300, 400]), &set(&[1, 2, 3, 4]));
    let last = c.last_views();
    let reference = &last[&p(1)];
    assert_eq!(reference.members(), &set(&[1, 2, 3, 4]));
    assert!(last.values().all(|v| v == reference));
}

#[test]
fn empty_server_contributes_no_members() {
    // A server with no live clients still participates in agreement.
    let mut c = Cluster::new(&[(100, &[1, 2]), (200, &[])]);
    c.connect(&set(&[100, 200]), &set(&[1, 2]));
    let last = c.last_views();
    assert_eq!(last.len(), 2);
    assert_eq!(last[&p(1)].members(), &set(&[1, 2]));
}

#[test]
fn rapid_flapping_converges() {
    let mut c = Cluster::new(&[(100, &[1, 2]), (200, &[3, 4])]);
    let servers = set(&[100, 200]);
    for round in 0..10u64 {
        let alive = if round % 2 == 0 { set(&[1, 2, 3, 4]) } else { set(&[1, 3]) };
        c.connect(&servers, &alive);
    }
    // Final state: the last (odd-round) membership {1,3}.
    let last = c.last_views();
    let reference = &last[&p(1)];
    assert_eq!(reference.members(), &set(&[1, 3]));
    assert_eq!(&last[&p(3)], reference, "clients 1 and 3 out of sync");
}
