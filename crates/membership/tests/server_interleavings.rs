//! Randomized delivery interleavings for the membership servers: the
//! synchronous in-crate tests route every broadcast instantly; here
//! proposals are queued per ordered server pair (FIFO, as their reliable
//! channels guarantee) and delivered in random order across channels,
//! interleaved with connectivity changes. Every emitted notification must
//! still satisfy the `MBRSHP` spec, and once connectivity stabilizes all
//! servers must converge on the same final view.

use std::collections::{BTreeMap, VecDeque};
use vsgm_ioa::{Checker, SimRng, SimTime, TraceEntry};
use vsgm_membership::{Server, ServerMsg, ServerOutput};
use vsgm_spec::MbrshpSpec;
use vsgm_types::{Event, ProcSet, ProcessId, View};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn set(ids: &[u64]) -> ProcSet {
    ids.iter().map(|&i| p(i)).collect()
}

struct RandomCluster {
    servers: Vec<Server>,
    /// Per ordered pair FIFO channels of in-flight proposals.
    channels: BTreeMap<(ProcessId, ProcessId), VecDeque<ServerMsg>>,
    spec: MbrshpSpec,
    step: u64,
    last_views: BTreeMap<ProcessId, View>,
    rng: SimRng,
}

impl RandomCluster {
    fn new(layout: &[(u64, &[u64])], seed: u64) -> Self {
        RandomCluster {
            servers: layout
                .iter()
                .map(|(sid, cs)| Server::new(p(*sid), cs.iter().map(|&c| p(c))))
                .collect(),
            channels: BTreeMap::new(),
            spec: MbrshpSpec::new(),
            step: 0,
            last_views: BTreeMap::new(),
            rng: SimRng::new(seed),
        }
    }

    fn absorb(&mut self, from: ProcessId, outputs: Vec<ServerOutput>) {
        for out in outputs {
            match out {
                ServerOutput::StartChange(n) => {
                    let entry = TraceEntry {
                        step: self.step,
                        time: SimTime::ZERO,
                        event: Event::MbrshpStartChange { p: n.p, cid: n.cid, set: n.set },
                    };
                    self.step += 1;
                    self.spec.observe(&entry).expect("MBRSHP spec holds under interleaving");
                }
                ServerOutput::View { client, view } => {
                    let entry = TraceEntry {
                        step: self.step,
                        time: SimTime::ZERO,
                        event: Event::MbrshpView { p: client, view: view.clone() },
                    };
                    self.step += 1;
                    self.spec.observe(&entry).expect("MBRSHP spec holds under interleaving");
                    self.last_views.insert(client, view);
                }
                ServerOutput::Broadcast { to, msg } => {
                    for dest in to {
                        self.channels.entry((from, dest)).or_default().push_back(msg.clone());
                    }
                }
            }
        }
    }

    fn connect(&mut self, servers: &ProcSet, alive: &ProcSet) {
        for i in 0..self.servers.len() {
            let id = self.servers[i].id();
            if servers.contains(&id) {
                let outs = self.servers[i].set_connectivity(servers.clone(), alive.clone());
                self.absorb(id, outs);
            }
            // Random partial progress between notifications.
            for _ in 0..self.rng.range(0, 4) {
                self.deliver_one();
            }
        }
    }

    /// Delivers one random channel head; returns false when idle.
    fn deliver_one(&mut self) -> bool {
        let nonempty: Vec<(ProcessId, ProcessId)> = self
            .channels
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(k, _)| *k)
            .collect();
        if nonempty.is_empty() {
            return false;
        }
        let key = nonempty[self.rng.index(nonempty.len())];
        let msg = self.channels.get_mut(&key).unwrap().pop_front().unwrap();
        let to = key.1;
        let outs = self
            .servers
            .iter_mut()
            .find(|s| s.id() == to)
            .expect("known server")
            .handle(msg);
        self.absorb(to, outs);
        true
    }

    fn drain(&mut self) {
        for _ in 0..100_000 {
            if !self.deliver_one() {
                return;
            }
        }
        panic!("server protocol did not quiesce");
    }
}

fn scenario(seed: u64) {
    let mut c = RandomCluster::new(
        &[(100, &[1, 2]), (200, &[3, 4]), (300, &[5, 6])],
        seed,
    );
    let all_servers = set(&[100, 200, 300]);
    let all_clients = set(&[1, 2, 3, 4, 5, 6]);
    // Bootstrap with random interleavings.
    c.connect(&all_servers, &all_clients);
    c.drain();
    // Churn: a client leaves; with partial deliveries interleaved.
    c.connect(&all_servers, &set(&[1, 2, 3, 4, 5]));
    c.drain();
    // A server drops out, then everything reconnects.
    c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
    c.drain();
    c.connect(&all_servers, &all_clients);
    c.drain();

    // Convergence: every client's LAST view is the full 6-member view and
    // identical everywhere.
    assert_eq!(c.last_views.len(), 6, "seed {seed}: {:?}", c.last_views);
    let reference = c.last_views[&p(1)].clone();
    assert_eq!(reference.members(), &all_clients, "seed {seed}");
    for (client, v) in &c.last_views {
        assert_eq!(v, &reference, "seed {seed}: {client} diverged");
    }
}

#[test]
fn random_interleavings_converge_and_satisfy_spec() {
    for seed in 0..60 {
        scenario(seed);
    }
}

#[test]
fn deep_interleaving_sweep() {
    for seed in 1000..1100 {
        scenario(seed);
    }
}
