//! Membership services for the vsgm stack.
//!
//! The GCS end-points of the paper consume an *external* membership
//! service through exactly two notifications (Fig. 2):
//!
//! * `start_change_p(cid, set)` — a view change is in progress; `cid` is a
//!   locally unique identifier, **not** globally agreed upon;
//! * `view_p(v)` — the new view, carrying the `startId` map from members
//!   to the last start-change identifiers they received.
//!
//! Two implementations are provided:
//!
//! * [`oracle::MembershipOracle`] — a scripted, centralized service for
//!   simulations and tests. The harness tells it *when* membership changes
//!   happen; the oracle guarantees every emitted notification satisfies
//!   the Fig. 2 spec (monotone cids and view ids, subset rules, correct
//!   `startId` maps), including cascaded `start_change`s, concurrent
//!   partitioned views, and crash/recovery (§8).
//! * [`server::Server`] — a membership *server* in the client-server
//!   architecture of the paper's reference \[27\]: dedicated servers (not
//!   the clients) exchange one round of proposals to agree on views, each
//!   serving its own set of clients. Used by the scalability experiment
//!   (E9) and the end-to-end server-based scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod server;

pub use oracle::{MembershipOracle, Notice};
pub use server::{Server, ServerMsg, ServerOutput};
