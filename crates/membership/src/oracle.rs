//! A scripted, spec-compliant membership oracle for simulations.

use std::collections::BTreeMap;
use vsgm_types::{ProcSet, ProcessId, StartChangeId, View, ViewId};

/// One `start_change_p(cid, set)` notification to be delivered to `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notice {
    /// Recipient end-point.
    pub p: ProcessId,
    /// Locally unique start-change identifier.
    pub cid: StartChangeId,
    /// Suggested membership of the forthcoming view.
    pub set: ProcSet,
}

#[derive(Debug, Clone, Default)]
struct ClientState {
    /// Next cid counter; cids start at 1 (`cid₀ = 0` labels the initial
    /// view and is never reissued).
    next_cid: u64,
    /// Last `start_change` whose view has not been delivered yet
    /// (`mode = change_started` in Fig. 2).
    pending: Option<(StartChangeId, ProcSet)>,
    /// Epoch of the last view delivered to this client (monotonicity
    /// floor; survives client crashes — the membership service itself
    /// does not crash, §8).
    last_epoch: u64,
}

/// A centralized membership service under scenario control.
///
/// The simulation harness decides *when* reconfigurations happen; the
/// oracle makes every emitted notification satisfy the `MBRSHP` spec
/// (Fig. 2). It is deliberately *partitionable*: concurrent views with
/// disjoint member sets can be formed for different partition components
/// by passing different `proposer` tie-breakers.
///
/// ```
/// use vsgm_membership::MembershipOracle;
/// use vsgm_types::{ProcSet, ProcessId};
///
/// let p1 = ProcessId::new(1);
/// let p2 = ProcessId::new(2);
/// let members: ProcSet = [p1, p2].into_iter().collect();
///
/// let mut oracle = MembershipOracle::new();
/// let notices = oracle.start_change(&members);
/// assert_eq!(notices.len(), 2);
/// let view = oracle.form_view(&members, 0);
/// assert_eq!(view.members(), &members);
/// assert_eq!(view.start_id(p1), Some(notices[0].cid));
/// ```
#[derive(Debug, Default)]
pub struct MembershipOracle {
    clients: BTreeMap<ProcessId, ClientState>,
}

impl MembershipOracle {
    /// Creates an oracle with every client in its initial state.
    pub fn new() -> Self {
        MembershipOracle::default()
    }

    fn client(&mut self, p: ProcessId) -> &mut ClientState {
        self.clients.entry(p).or_insert_with(|| ClientState {
            next_cid: 1,
            pending: None,
            last_epoch: 0,
        })
    }

    /// Starts (or cascades) a membership change suggesting `suggested` as
    /// the next membership, notifying every process in `suggested`.
    /// Returns the notifications to deliver, in process order.
    pub fn start_change(&mut self, suggested: &ProcSet) -> Vec<Notice> {
        self.start_change_for(suggested, suggested)
    }

    /// Like [`MembershipOracle::start_change`] but notifies only
    /// `targets` (processes in other partition components may be notified
    /// separately with a different suggestion).
    ///
    /// # Panics
    ///
    /// Panics if some target is not in `suggested` — the spec requires
    /// `p ∈ set` for every `start_change_p(cid, set)`.
    pub fn start_change_for(&mut self, targets: &ProcSet, suggested: &ProcSet) -> Vec<Notice> {
        let mut out = Vec::new();
        for p in targets {
            assert!(
                suggested.contains(p),
                "start_change to {p} must include it in the suggested set"
            );
            let st = self.client(*p);
            let cid = StartChangeId::new(st.next_cid);
            st.next_cid += 1;
            st.pending = Some((cid, suggested.clone()));
            out.push(Notice { p: *p, cid, set: suggested.clone() });
        }
        out
    }

    /// Forms the view the pending change resolves to, for the given
    /// member set. `proposer` is the [`ViewId`] tie-breaker, letting
    /// disjoint partition components form concurrent views.
    ///
    /// The caller delivers the returned view to each member (e.g. as
    /// `Event::MbrshpView`); the oracle transitions those members back to
    /// `mode = normal`.
    ///
    /// # Panics
    ///
    /// Panics if some member has no pending `start_change`, or if its
    /// pending suggestion does not cover `members` (the spec's
    /// `v.set ⊆ start_change[p].set`) — both indicate a scenario bug.
    pub fn form_view(&mut self, members: &ProcSet, proposer: u64) -> View {
        let mut epoch = 0;
        let mut start_ids: Vec<(ProcessId, StartChangeId)> = Vec::new();
        for p in members {
            let st = self.client(*p);
            let (cid, suggested) = st.pending.as_ref().unwrap_or_else(
                // The documented scenario-bug panic: the oracle drives
                // hand-written scenarios, and a member without a pending
                // change means the scenario itself violates the spec's
                // form_view precondition.
                // vsgm-allow(P1): documented scenario-bug check
                || panic!("form_view: {p} has no pending start_change"),
            );
            assert!(
                members.iter().all(|m| suggested.contains(m)),
                "form_view: {p}'s suggested set {suggested:?} does not cover {members:?}"
            );
            start_ids.push((*p, *cid));
            epoch = epoch.max(st.last_epoch);
        }
        epoch += 1;
        let view = View::new(ViewId::new(epoch, proposer), members.iter().copied(), start_ids);
        for p in members {
            let st = self.client(*p);
            st.pending = None;
            st.last_epoch = epoch;
        }
        view
    }

    /// Convenience: a full reconfiguration — one `start_change` round to
    /// the members followed by the view. Returns `(notices, view)`.
    pub fn reconfigure(&mut self, members: &ProcSet, proposer: u64) -> (Vec<Notice>, View) {
        let notices = self.start_change(members);
        let view = self.form_view(members, proposer);
        (notices, view)
    }

    /// Whether `p` currently has a pending change (`mode =
    /// change_started`).
    pub fn change_pending(&self, p: ProcessId) -> bool {
        self.clients.get(&p).is_some_and(|st| st.pending.is_some())
    }

    /// The last start-change identifier issued to `p`, if any.
    pub fn last_cid(&self, p: ProcessId) -> Option<StartChangeId> {
        self.clients.get(&p).and_then(|st| st.pending.as_ref().map(|(c, _)| *c))
    }

    /// §8: `recover_p()` resets the service's mode for `p` to `normal`,
    /// so a fresh `start_change` must precede `p`'s next view.
    pub fn recover(&mut self, p: ProcessId) {
        self.client(p).pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{Checker, SimTime, TraceEntry};
    use vsgm_spec::MbrshpSpec;
    use vsgm_types::Event;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// Replays oracle output through the MBRSHP spec checker.
    struct SpecHarness {
        spec: MbrshpSpec,
        step: u64,
    }

    impl SpecHarness {
        fn new() -> Self {
            SpecHarness { spec: MbrshpSpec::new(), step: 0 }
        }

        fn feed(&mut self, event: Event) {
            let entry = TraceEntry { step: self.step, time: SimTime::ZERO, event };
            self.step += 1;
            self.spec.observe(&entry).expect("oracle output must satisfy MBRSHP spec");
        }

        fn notices(&mut self, notices: &[Notice]) {
            for n in notices {
                self.feed(Event::MbrshpStartChange { p: n.p, cid: n.cid, set: n.set.clone() });
            }
        }

        fn view(&mut self, view: &View) {
            for m in view.members() {
                self.feed(Event::MbrshpView { p: *m, view: view.clone() });
            }
        }
    }

    #[test]
    fn simple_reconfiguration_is_spec_compliant() {
        let mut oracle = MembershipOracle::new();
        let mut h = SpecHarness::new();
        let (notices, view) = oracle.reconfigure(&set(&[1, 2, 3]), 0);
        h.notices(&notices);
        h.view(&view);
        assert_eq!(view.len(), 3);
        assert_eq!(view.id().epoch, 1);
    }

    #[test]
    fn cascaded_changes_are_spec_compliant() {
        let mut oracle = MembershipOracle::new();
        let mut h = SpecHarness::new();
        let n1 = oracle.start_change(&set(&[1, 2]));
        h.notices(&n1);
        // Membership changes its mind: p3 joins mid-change.
        let n2 = oracle.start_change(&set(&[1, 2, 3]));
        h.notices(&n2);
        let view = oracle.form_view(&set(&[1, 2, 3]), 0);
        h.view(&view);
        // The view carries the *latest* cids.
        assert_eq!(view.start_id(p(1)), Some(n2[0].cid));
        assert!(n2[0].cid > n1[0].cid);
    }

    #[test]
    fn view_can_shrink_below_suggestion() {
        let mut oracle = MembershipOracle::new();
        let mut h = SpecHarness::new();
        let notices = oracle.start_change(&set(&[1, 2, 3]));
        h.notices(&notices);
        // Only {1,2} end up in the view; p3 is elsewhere.
        let view = oracle.form_view(&set(&[1, 2]), 0);
        h.view(&view);
        assert_eq!(view.members(), &set(&[1, 2]));
    }

    #[test]
    fn concurrent_partitioned_views() {
        let mut oracle = MembershipOracle::new();
        let mut h = SpecHarness::new();
        // First everyone joins one view.
        let (n, v) = oracle.reconfigure(&set(&[1, 2, 3, 4]), 0);
        h.notices(&n);
        h.view(&v);
        // Partition {1,2} | {3,4}: two concurrent views.
        let na = oracle.start_change_for(&set(&[1, 2]), &set(&[1, 2]));
        let nb = oracle.start_change_for(&set(&[3, 4]), &set(&[3, 4]));
        h.notices(&na);
        h.notices(&nb);
        let va = oracle.form_view(&set(&[1, 2]), 0);
        let vb = oracle.form_view(&set(&[3, 4]), 1);
        h.view(&va);
        h.view(&vb);
        assert_ne!(va.id(), vb.id());
        // Merge back.
        let nm = oracle.start_change(&set(&[1, 2, 3, 4]));
        h.notices(&nm);
        let vm = oracle.form_view(&set(&[1, 2, 3, 4]), 0);
        h.view(&vm);
        assert!(vm.id() > va.id() && vm.id() > vb.id());
    }

    #[test]
    fn cids_are_locally_unique_and_increasing() {
        let mut oracle = MembershipOracle::new();
        let n1 = oracle.start_change(&set(&[1]));
        let v = oracle.form_view(&set(&[1]), 0);
        let n2 = oracle.start_change(&set(&[1]));
        assert!(n2[0].cid > n1[0].cid);
        assert_eq!(v.start_id(p(1)), Some(n1[0].cid));
    }

    #[test]
    #[should_panic(expected = "no pending start_change")]
    fn view_without_start_change_panics() {
        let mut oracle = MembershipOracle::new();
        oracle.form_view(&set(&[1]), 0);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn view_exceeding_suggestion_panics() {
        let mut oracle = MembershipOracle::new();
        oracle.start_change(&set(&[1]));
        oracle.start_change_for(&set(&[2]), &set(&[1, 2]));
        // p1's suggestion {1} does not cover {1,2}.
        oracle.form_view(&set(&[1, 2]), 0);
    }

    #[test]
    fn recovery_requires_fresh_start_change() {
        let mut oracle = MembershipOracle::new();
        let mut h = SpecHarness::new();
        let n = oracle.start_change(&set(&[1]));
        h.notices(&n);
        h.feed(Event::Crash { p: p(1) });
        oracle.recover(p(1));
        h.feed(Event::Recover { p: p(1) });
        assert!(!oracle.change_pending(p(1)));
        // A fresh change is needed before the next view.
        let n2 = oracle.start_change(&set(&[1]));
        h.notices(&n2);
        let v = oracle.form_view(&set(&[1]), 0);
        h.view(&v);
    }

    #[test]
    fn last_cid_reflects_pending_change() {
        let mut oracle = MembershipOracle::new();
        assert_eq!(oracle.last_cid(p(1)), None);
        let n = oracle.start_change(&set(&[1]));
        assert_eq!(oracle.last_cid(p(1)), Some(n[0].cid));
        oracle.form_view(&set(&[1]), 0);
        assert_eq!(oracle.last_cid(p(1)), None);
    }
}
