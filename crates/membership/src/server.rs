//! A client-server membership implementation in the style of the paper's
//! reference \[27\] (Keidar, Sussman, Marzullo, Dolev).
//!
//! Dedicated membership *servers* — not the clients — agree on views.
//! Each server owns a static set of clients. The protocol is round-based:
//!
//! * a server **initiates** a new round when its failure-detector estimate
//!   changes, and **joins** any higher round it hears of in a peer's
//!   proposal;
//! * entering a round always does two things atomically: send fresh
//!   `start_change` notifications (new locally unique cids) to the live
//!   local clients, and broadcast one [`ServerMsg::Proposal`] to the peer
//!   servers — so every view a server later delivers is necessarily
//!   preceded by a `start_change` at each of its clients (the Fig. 2
//!   `mode` discipline holds structurally);
//! * once a server holds proposals for its **current round from every
//!   server in its estimate** (all agreeing on that estimate), the view is
//!   a *deterministic function of the proposal set* — members are the
//!   union of proposed client sets, the `startId` map is the union of the
//!   proposed cid maps, the epoch is one past the largest proposed epoch —
//!   so all servers deliver the *same* view with no further messages: a
//!   one-round membership algorithm in the steady state, exactly what the
//!   paper's virtual-synchrony layer runs in parallel with.
//!
//! If the union of proposed members is not covered by every proposal's
//! suggestion (a join discovered via a peer), every server deterministically
//! escalates to the next round with the larger suggestion — the spec's
//! "cascaded `start_change`" path — and converges one round later.

use crate::oracle::Notice;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vsgm_net::Wire;
use vsgm_obs::{names, NoopRecorder, Recorder};
use vsgm_types::{ProcSet, ProcessId, StartChangeId, View, ViewId};

/// Server-to-server protocol messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// One server's contribution to a membership round.
    Proposal {
        /// The proposing server.
        from: ProcessId,
        /// The round this proposal belongs to.
        round: u64,
        /// The proposer's current epoch (max view epoch it knows).
        epoch: u64,
        /// The proposer's live local clients.
        members: ProcSet,
        /// Latest start-change cid sent to each live local client.
        start_ids: BTreeMap<ProcessId, StartChangeId>,
        /// The membership the proposer suggested in those start_changes.
        suggested: ProcSet,
        /// The proposer's server-connectivity estimate (including itself).
        est_servers: ProcSet,
    },
}

impl Wire for ServerMsg {
    fn tag(&self) -> &'static str {
        "mbrshp.proposal"
    }
    fn wire_size(&self) -> usize {
        match self {
            ServerMsg::Proposal { members, start_ids, suggested, est_servers, .. } => {
                32 + members.len() * 8
                    + start_ids.len() * 16
                    + suggested.len() * 8
                    + est_servers.len() * 8
            }
        }
    }
}

/// An action the server asks its host to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerOutput {
    /// Deliver a `start_change` notification to a local client.
    StartChange(Notice),
    /// Deliver a view to a local client.
    View {
        /// The local client.
        client: ProcessId,
        /// The formed view.
        view: View,
    },
    /// Send a protocol message to the given peer servers.
    Broadcast {
        /// Destination servers.
        to: ProcSet,
        /// The message.
        msg: ServerMsg,
    },
}

#[derive(Debug, Clone)]
struct StoredProposal {
    round: u64,
    epoch: u64,
    members: ProcSet,
    start_ids: BTreeMap<ProcessId, StartChangeId>,
    suggested: ProcSet,
    est_servers: ProcSet,
}

/// One membership server.
///
/// Drive it with [`Server::set_connectivity`] (from a failure detector /
/// the simulation's connectivity oracle) and [`Server::handle`] (peer
/// messages); both return [`ServerOutput`]s for the host to route.
#[derive(Debug)]
pub struct Server {
    id: ProcessId,
    local_clients: ProcSet,
    alive_clients: ProcSet,
    est_servers: ProcSet,
    round: u64,
    epoch: u64,
    next_cid: BTreeMap<ProcessId, u64>,
    suggested: ProcSet,
    proposals: BTreeMap<ProcessId, StoredProposal>,
    /// Proposal-set signature (server → round) of the last formed view.
    last_formed: Option<BTreeMap<ProcessId, u64>>,
    bootstrapped: bool,
}

impl Server {
    /// Creates a server owning `local_clients`. The first call to
    /// [`Server::set_connectivity`] bootstraps the first round.
    pub fn new(id: ProcessId, local_clients: impl IntoIterator<Item = ProcessId>) -> Self {
        Server {
            id,
            local_clients: local_clients.into_iter().collect(),
            alive_clients: ProcSet::new(),
            est_servers: [id].into_iter().collect(),
            round: 0,
            epoch: 0,
            next_cid: BTreeMap::new(),
            suggested: ProcSet::new(),
            proposals: BTreeMap::new(),
            last_formed: None,
            bootstrapped: false,
        }
    }

    /// This server's identity.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The clients this server owns (static assignment).
    pub fn local_clients(&self) -> &ProcSet {
        &self.local_clients
    }

    /// The server's current round (for tests and metrics).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Updates the failure-detector estimate: which servers are reachable
    /// (must include this server) and which clients are alive (filtered to
    /// this server's own). A change initiates a new round.
    ///
    /// # Panics
    ///
    /// Panics if `servers` does not include this server.
    pub fn set_connectivity(
        &mut self,
        servers: ProcSet,
        alive_clients: ProcSet,
    ) -> Vec<ServerOutput> {
        self.set_connectivity_rec(servers, alive_clients, &mut NoopRecorder)
    }

    /// [`Server::set_connectivity`] with an observability [`Recorder`]:
    /// counts rounds entered, `start_change` notifications issued, and
    /// view deliveries produced by the estimate change.
    ///
    /// # Panics
    ///
    /// Panics if `servers` does not include this server.
    pub fn set_connectivity_rec(
        &mut self,
        servers: ProcSet,
        alive_clients: ProcSet,
        rec: &mut dyn Recorder,
    ) -> Vec<ServerOutput> {
        assert!(servers.contains(&self.id), "estimate must include self");
        let alive: ProcSet = alive_clients.intersection(&self.local_clients).copied().collect();
        if self.bootstrapped && servers == self.est_servers && alive == self.alive_clients {
            return Vec::new();
        }
        self.bootstrapped = true;
        // Forget proposals from servers no longer in the estimate.
        self.proposals.retain(|s, _| servers.contains(s));
        self.est_servers = servers;
        self.alive_clients = alive;
        let next_round = self.highest_known_round() + 1;
        let suggestion = self.current_union_estimate();
        let round_before = self.round;
        let outs = self.enter_round(next_round, suggestion);
        record_round_progress(rec, round_before, self.round, &outs);
        outs
    }

    /// Handles a protocol message from a peer server.
    pub fn handle(&mut self, msg: ServerMsg) -> Vec<ServerOutput> {
        self.handle_rec(msg, &mut NoopRecorder)
    }

    /// [`Server::handle`] with an observability [`Recorder`]: counts
    /// processed proposals, rounds joined, `start_change` notifications
    /// issued, and views formed.
    pub fn handle_rec(&mut self, msg: ServerMsg, rec: &mut dyn Recorder) -> Vec<ServerOutput> {
        rec.counter(names::MBRSHP_PROPOSALS, 1);
        let round_before = self.round;
        let outs = self.handle_inner(msg);
        record_round_progress(rec, round_before, self.round, &outs);
        outs
    }

    fn handle_inner(&mut self, msg: ServerMsg) -> Vec<ServerOutput> {
        let ServerMsg::Proposal {
            from,
            round,
            epoch,
            members,
            start_ids,
            suggested,
            est_servers,
        } = msg;
        if self.proposals.get(&from).is_some_and(|p| p.round >= round) {
            return Vec::new(); // stale
        }
        // Proposals from servers outside the current estimate are stored
        // (so a later reconnection knows the highest round in play — see
        // `set_connectivity`) but trigger no protocol action.
        self.proposals.insert(
            from,
            StoredProposal { round, epoch, members, start_ids, suggested, est_servers },
        );
        if !self.est_servers.contains(&from) {
            return Vec::new(); // from a server we consider disconnected
        }
        if round > self.round {
            // Join the higher round: fresh start_changes + own proposal.
            let suggestion = self.current_union_estimate();
            self.enter_round(round, suggestion)
        } else {
            self.try_form()
        }
    }

    fn highest_known_round(&self) -> u64 {
        self.proposals.values().map(|p| p.round).max().unwrap_or(0).max(self.round)
    }

    /// Union-of-knowledge membership estimate: live local clients plus
    /// every client proposed by servers in the current estimate.
    fn current_union_estimate(&self) -> ProcSet {
        let mut est = self.alive_clients.clone();
        for (s, prop) in &self.proposals {
            if *s != self.id && self.est_servers.contains(s) {
                est.extend(prop.members.iter().copied());
            }
        }
        est
    }

    /// Enters `round`: issues fresh `start_change`s to live local clients,
    /// broadcasts this server's proposal, then tries to form a view.
    fn enter_round(&mut self, round: u64, suggestion: ProcSet) -> Vec<ServerOutput> {
        self.round = round;
        let mut suggested = suggestion;
        suggested.extend(self.alive_clients.iter().copied());
        self.suggested = suggested.clone();
        let mut out = Vec::new();
        let mut start_ids = BTreeMap::new();
        for c in self.alive_clients.clone() {
            let next = self.next_cid.entry(c).or_insert(1);
            let cid = StartChangeId::new(*next);
            *next += 1;
            start_ids.insert(c, cid);
            out.push(ServerOutput::StartChange(Notice { p: c, cid, set: suggested.clone() }));
        }
        let proposal = StoredProposal {
            round,
            epoch: self.epoch,
            members: self.alive_clients.clone(),
            start_ids,
            suggested,
            est_servers: self.est_servers.clone(),
        };
        self.proposals.insert(self.id, proposal.clone());
        let peers: ProcSet = self.est_servers.iter().copied().filter(|s| *s != self.id).collect();
        if !peers.is_empty() {
            out.push(ServerOutput::Broadcast {
                to: peers,
                msg: ServerMsg::Proposal {
                    from: self.id,
                    round,
                    epoch: proposal.epoch,
                    members: proposal.members,
                    start_ids: proposal.start_ids,
                    suggested: proposal.suggested,
                    est_servers: proposal.est_servers,
                },
            });
        }
        let mut formed = self.try_form();
        out.append(&mut formed);
        out
    }

    fn try_form(&mut self) -> Vec<ServerOutput> {
        // Need a proposal for the current round from every server in the
        // estimate, all agreeing on that estimate.
        let mut props: Vec<(ProcessId, &StoredProposal)> = Vec::new();
        for s in &self.est_servers {
            match self.proposals.get(s) {
                Some(p) if p.round == self.round && p.est_servers == self.est_servers => {
                    props.push((*s, p));
                }
                _ => return Vec::new(),
            }
        }
        let members: ProcSet =
            props.iter().flat_map(|(_, p)| p.members.iter().copied()).collect();
        if members.is_empty() {
            return Vec::new();
        }
        // Every proposal's suggestion must cover the union; otherwise all
        // servers deterministically escalate to the next round with the
        // larger suggestion (cascaded start_change).
        let covered =
            props.iter().all(|(_, p)| members.iter().all(|m| p.suggested.contains(m)));
        // Deduplicate: don't re-form from an unchanged proposal set.
        let signature: BTreeMap<ProcessId, u64> =
            props.iter().map(|(s, p)| (*s, p.round)).collect();
        let epoch = 1 + props.iter().map(|(_, p)| p.epoch).max().unwrap_or(0);
        let Some(proposer) = props.iter().map(|(s, _)| s.raw()).min() else {
            return Vec::new(); // unreachable: est_servers always contains self
        };
        let mut start_ids: Vec<(ProcessId, StartChangeId)> = Vec::new();
        for (_, p) in &props {
            for (c, cid) in &p.start_ids {
                if members.contains(c) {
                    start_ids.push((*c, *cid));
                }
            }
        }
        drop(props);
        if !covered {
            let next = self.round + 1;
            return self.enter_round(next, members);
        }
        if self.last_formed.as_ref() == Some(&signature) {
            return Vec::new();
        }
        let view = View::new(ViewId::new(epoch, proposer), members.iter().copied(), start_ids);
        self.epoch = epoch;
        self.last_formed = Some(signature);
        self.alive_clients
            .iter()
            .filter(|c| members.contains(c))
            .map(|c| ServerOutput::View { client: *c, view: view.clone() })
            .collect()
    }
}

/// Mirrors one server call's round progress and outputs into a recorder.
fn record_round_progress(
    rec: &mut dyn Recorder,
    round_before: u64,
    round_after: u64,
    outs: &[ServerOutput],
) {
    if round_after > round_before {
        rec.counter(names::MBRSHP_ROUNDS, 1);
    }
    for o in outs {
        match o {
            ServerOutput::StartChange(_) => rec.counter(names::MBRSHP_START_CHANGES, 1),
            ServerOutput::View { .. } => rec.counter(names::MBRSHP_VIEWS_FORMED, 1),
            ServerOutput::Broadcast { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_ioa::{Checker, SimTime, TraceEntry};
    use vsgm_spec::MbrshpSpec;
    use vsgm_types::Event;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn set(ids: &[u64]) -> ProcSet {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// Routes outputs between servers until quiescence, feeding client
    /// notifications through the MBRSHP spec checker and collecting views.
    struct Cluster {
        servers: Vec<Server>,
        spec: MbrshpSpec,
        step: u64,
        views: Vec<(ProcessId, View)>,
        broadcasts: u64,
    }

    impl Cluster {
        fn new(servers: Vec<Server>) -> Self {
            Cluster { servers, spec: MbrshpSpec::new(), step: 0, views: Vec::new(), broadcasts: 0 }
        }

        fn feed_spec(&mut self, event: Event) {
            let entry = TraceEntry { step: self.step, time: SimTime::ZERO, event };
            self.step += 1;
            self.spec.observe(&entry).expect("server output must satisfy MBRSHP spec");
        }

        fn route(&mut self, outputs: Vec<ServerOutput>) {
            let mut queue: std::collections::VecDeque<ServerOutput> = outputs.into();
            while let Some(out) = queue.pop_front() {
                match out {
                    ServerOutput::StartChange(n) => {
                        self.feed_spec(Event::MbrshpStartChange { p: n.p, cid: n.cid, set: n.set });
                    }
                    ServerOutput::View { client, view } => {
                        self.feed_spec(Event::MbrshpView { p: client, view: view.clone() });
                        self.views.push((client, view));
                    }
                    ServerOutput::Broadcast { to, msg } => {
                        self.broadcasts += 1;
                        for dest in &to {
                            if let Some(srv) = self.servers.iter_mut().find(|s| s.id() == *dest) {
                                let more = srv.handle(msg.clone());
                                queue.extend(more);
                            }
                        }
                    }
                }
            }
        }

        fn connect(&mut self, servers: &ProcSet, alive: &ProcSet) {
            for i in 0..self.servers.len() {
                if servers.contains(&self.servers[i].id()) {
                    let outs = self.servers[i].set_connectivity(servers.clone(), alive.clone());
                    self.route(outs);
                }
            }
        }
    }

    fn two_server_cluster() -> Cluster {
        // Servers 100, 200; clients 1,2 on 100 and 3,4 on 200.
        Cluster::new(vec![Server::new(p(100), [p(1), p(2)]), Server::new(p(200), [p(3), p(4)])])
    }

    #[test]
    fn two_servers_agree_on_one_view() {
        let mut c = two_server_cluster();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        // Every client's *last* view is the full one, and identical across
        // clients.
        let mut last: BTreeMap<ProcessId, View> = BTreeMap::new();
        for (cl, v) in &c.views {
            last.insert(*cl, v.clone());
        }
        assert_eq!(last.len(), 4, "{:?}", c.views);
        let reference = last[&p(1)].clone();
        assert!(last.values().all(|v| *v == reference));
        assert_eq!(reference.members(), &set(&[1, 2, 3, 4]));
        for m in reference.members() {
            assert!(reference.start_id(*m).is_some());
        }
    }

    #[test]
    fn single_server_forms_local_view() {
        let mut c = Cluster::new(vec![Server::new(p(100), [p(1), p(2)])]);
        c.connect(&set(&[100]), &set(&[1, 2]));
        assert_eq!(c.views.len(), 2);
        assert_eq!(c.views[0].1.members(), &set(&[1, 2]));
    }

    #[test]
    fn client_crash_triggers_smaller_view() {
        let mut c = two_server_cluster();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        c.views.clear();
        // Client 4 dies.
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3]));
        let mut last: BTreeMap<ProcessId, View> = BTreeMap::new();
        for (cl, v) in &c.views {
            last.insert(*cl, v.clone());
        }
        assert_eq!(last.len(), 3, "{:?}", c.views);
        assert!(last.values().all(|v| v.members() == &set(&[1, 2, 3])));
    }

    #[test]
    fn server_partition_forms_concurrent_views() {
        let mut c = two_server_cluster();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        c.views.clear();
        // Servers split: each forms a view of its own clients.
        c.connect(&set(&[100]), &set(&[1, 2]));
        c.connect(&set(&[200]), &set(&[3, 4]));
        let views_100: Vec<_> =
            c.views.iter().filter(|(cl, _)| *cl == p(1) || *cl == p(2)).collect();
        let views_200: Vec<_> =
            c.views.iter().filter(|(cl, _)| *cl == p(3) || *cl == p(4)).collect();
        assert_eq!(views_100.len(), 2);
        assert_eq!(views_200.len(), 2);
        assert_eq!(views_100[0].1.members(), &set(&[1, 2]));
        assert_eq!(views_200[0].1.members(), &set(&[3, 4]));
        assert_ne!(views_100[0].1.id(), views_200[0].1.id());
    }

    #[test]
    fn merge_after_partition_produces_larger_view() {
        let mut c = two_server_cluster();
        c.connect(&set(&[100]), &set(&[1, 2]));
        c.connect(&set(&[200]), &set(&[3, 4]));
        let pre_merge_max_epoch = c.views.iter().map(|(_, v)| v.id().epoch).max().unwrap();
        c.views.clear();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        let mut last: BTreeMap<ProcessId, View> = BTreeMap::new();
        for (cl, v) in &c.views {
            last.insert(*cl, v.clone());
        }
        assert_eq!(last.len(), 4, "{:?}", c.views);
        let merged = &last[&p(1)];
        assert_eq!(merged.members(), &set(&[1, 2, 3, 4]));
        assert!(merged.id().epoch > pre_merge_max_epoch);
        assert!(last.values().all(|v| v == merged));
    }

    #[test]
    fn stable_connectivity_is_a_noop() {
        let mut c = two_server_cluster();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        let views_before = c.views.len();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        assert_eq!(c.views.len(), views_before, "no new views on unchanged estimate");
    }

    #[test]
    fn steady_state_change_is_one_round() {
        // After bootstrap (which needs an escalation round because servers
        // have not yet heard of each other's clients), a leave completes in
        // ONE proposal per server: the one-round property of [27].
        let mut c = two_server_cluster();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        c.broadcasts = 0;
        c.views.clear();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3]));
        // One broadcast from s2 (whose client left) + one from s1 joining
        // the round: one proposal per server, no escalation.
        assert_eq!(c.broadcasts, 2, "expected one proposal per server");
        assert!(!c.views.is_empty());
    }

    #[test]
    fn stale_proposal_ignored() {
        let mut s1 = Server::new(p(100), [p(1)]);
        let _ = s1.set_connectivity(set(&[100, 200]), set(&[1]));
        let fresh = ServerMsg::Proposal {
            from: p(200),
            round: 5,
            epoch: 0,
            members: set(&[9]),
            start_ids: [(p(9), StartChangeId::new(1))].into_iter().collect(),
            suggested: set(&[1, 9]),
            est_servers: set(&[100, 200]),
        };
        let stale = ServerMsg::Proposal {
            from: p(200),
            round: 4,
            epoch: 0,
            members: set(&[8]),
            start_ids: [(p(8), StartChangeId::new(1))].into_iter().collect(),
            suggested: set(&[1, 8]),
            est_servers: set(&[100, 200]),
        };
        let _ = s1.handle(fresh);
        let outs = s1.handle(stale);
        assert!(outs.is_empty(), "stale proposal must be ignored: {outs:?}");
    }

    #[test]
    fn proposal_from_excluded_server_ignored() {
        let mut s1 = Server::new(p(100), [p(1)]);
        let _ = s1.set_connectivity(set(&[100]), set(&[1]));
        let msg = ServerMsg::Proposal {
            from: p(200),
            round: 1,
            epoch: 0,
            members: set(&[9]),
            start_ids: [(p(9), StartChangeId::new(1))].into_iter().collect(),
            suggested: set(&[9]),
            est_servers: set(&[100, 200]),
        };
        assert!(s1.handle(msg).is_empty());
    }

    #[test]
    fn recorder_counts_rounds_starts_and_views() {
        use vsgm_obs::Registry;
        let mut reg = Registry::new();
        let mut s = Server::new(p(100), [p(1), p(2)]);
        let outs = s.set_connectivity_rec(set(&[100]), set(&[1, 2]), &mut reg);
        // A lone server enters one round and forms the local view at once.
        assert!(!outs.is_empty());
        assert_eq!(reg.counter(names::MBRSHP_ROUNDS), 1);
        assert_eq!(reg.counter(names::MBRSHP_START_CHANGES), 2);
        assert_eq!(reg.counter(names::MBRSHP_VIEWS_FORMED), 2);
        assert_eq!(reg.counter(names::MBRSHP_PROPOSALS), 0);
        // A stale proposal is still counted as processed but changes nothing.
        let stale = ServerMsg::Proposal {
            from: p(100),
            round: 0,
            epoch: 0,
            members: set(&[9]),
            start_ids: BTreeMap::new(),
            suggested: set(&[9]),
            est_servers: set(&[100]),
        };
        let outs = s.handle_rec(stale, &mut reg);
        assert!(outs.is_empty());
        assert_eq!(reg.counter(names::MBRSHP_PROPOSALS), 1);
        assert_eq!(reg.counter(names::MBRSHP_ROUNDS), 1);
    }

    #[test]
    fn view_epochs_monotone_per_client() {
        let mut c = two_server_cluster();
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3]));
        c.connect(&set(&[100, 200]), &set(&[1, 2, 3, 4]));
        let mut per_client: BTreeMap<ProcessId, Vec<u64>> = BTreeMap::new();
        for (cl, v) in &c.views {
            per_client.entry(*cl).or_default().push(v.id().epoch);
        }
        for (cl, epochs) in per_client {
            for w in epochs.windows(2) {
                assert!(w[0] < w[1], "{cl}: epochs not monotone: {epochs:?}");
            }
        }
    }
}
