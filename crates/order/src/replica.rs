//! State-machine replication with transitional-set-driven state transfer —
//! the application pattern §4.1.2 motivates, packaged as a library.
//!
//! > "When a new view forms, such applications must exchange special
//! > messages in order to synchronize members of the new view. A group
//! > communication system that supports Virtual Synchrony allows
//! > processes to avoid such costly exchange among processes that
//! > continue together from one view to the next."
//!
//! [`Replica`] runs a deterministic [`StateMachine`] over the
//! [`TotalOrder`] layer. On every view change it uses
//! the **transitional set** exactly as the paper intends: members that
//! moved together need no synchronization; if anyone else is present, the
//! smallest-id member of the transitional set multicasts one snapshot,
//! and receivers adopt it only when it is ahead of their own history
//! (tracked by an applied-operations counter).

use crate::{OrderedMsg, TotalOrder};
use serde::{Deserialize, Serialize};
use vsgm_types::{AppMsg, ProcSet, ProcessId, View};

/// A deterministic application state machine.
pub trait StateMachine {
    /// Applies one command (commands arrive in the same total order at
    /// every replica).
    fn apply(&mut self, cmd: &[u8]);
    /// Serializes the current state.
    fn snapshot(&self) -> Vec<u8>;
    /// Replaces the current state with a snapshot.
    fn restore(&mut self, snapshot: &[u8]);
}

/// Replica-to-replica wire format (rides inside GCS application
/// payloads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum ReplicaWire {
    /// A total-order layer message (command or sequencer reference).
    Order(Vec<u8>),
    /// A state snapshot from the transitional-set donor.
    Snapshot {
        /// Number of commands the donor had applied.
        applied: u64,
        /// The serialized state.
        data: Vec<u8>,
    },
}

/// One replica of a totally ordered, virtually synchronous state machine.
///
/// Feed it the GCS application events; multicast whatever it returns.
///
/// ```
/// use vsgm_order::{LogMachine, Replica};
/// use vsgm_types::{ProcessId, View};
///
/// let p1 = ProcessId::new(1);
/// let mut r = Replica::new(p1, LogMachine::default());
/// let v = View::initial(p1);
/// r.on_view(&v, v.members());
/// let wire = r.submit(b"set x=1".to_vec());
/// // Multicast `wire` through the GCS; the echo applies the command:
/// r.on_deliver(p1, &wire);
/// assert_eq!(r.applied(), 1);
/// assert_eq!(r.machine().log, vec![b"set x=1".to_vec()]);
/// ```
#[derive(Debug)]
pub struct Replica<M: StateMachine> {
    pid: ProcessId,
    order: TotalOrder,
    machine: M,
    applied: u64,
}

impl<M: StateMachine> Replica<M> {
    /// Creates a replica around an initial state machine.
    pub fn new(pid: ProcessId, machine: M) -> Self {
        Replica { pid, order: TotalOrder::new(pid), machine, applied: 0 }
    }

    /// The wrapped state machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Number of commands applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Wraps a command for multicast through the GCS.
    pub fn submit(&self, cmd: impl Into<Vec<u8>>) -> AppMsg {
        let inner = self.order.submit(cmd.into());
        encode(&ReplicaWire::Order(inner.as_bytes().to_vec()))
    }

    /// Feeds one GCS delivery. Returns any message that must be
    /// multicast in response (the sequencer's ordering references).
    pub fn on_deliver(&mut self, from: ProcessId, msg: &AppMsg) -> Option<AppMsg> {
        match decode(msg) {
            Some(ReplicaWire::Order(raw)) => {
                let (ordered, announce) = self.order.on_deliver(from, &AppMsg::from(raw));
                self.apply_all(ordered);
                announce.map(|a| encode(&ReplicaWire::Order(a.as_bytes().to_vec())))
            }
            Some(ReplicaWire::Snapshot { applied, data }) => {
                if applied > self.applied {
                    self.machine.restore(&data);
                    self.applied = applied;
                }
                None
            }
            None => None,
        }
    }

    /// Feeds a GCS view change. Flushes the total-order backlog (identical
    /// across the transitional set, by Virtual Synchrony) and, when the
    /// view contains members outside the transitional set, has the
    /// smallest transitional member donate one snapshot.
    ///
    /// On a merge of several components, each component's smallest
    /// transitional member donates; the `applied` counter arbitrates, so
    /// everyone converges on the longest history. (Applications that need
    /// a different merge policy — e.g. primary-partition — replace this
    /// layer's donor rule.)
    pub fn on_view(&mut self, view: &View, transitional: &ProcSet) -> Option<AppMsg> {
        let flushed = self.order.on_view(view, transitional);
        self.apply_all(flushed);
        let donor = transitional.iter().next().copied();
        let everyone_moved_together = transitional.len() == view.len();
        if !everyone_moved_together && donor == Some(self.pid) {
            return Some(encode(&ReplicaWire::Snapshot {
                applied: self.applied,
                data: self.machine.snapshot(),
            }));
        }
        None
    }

    fn apply_all(&mut self, msgs: Vec<OrderedMsg>) {
        for m in msgs {
            self.machine.apply(&m.payload);
            self.applied += 1;
        }
    }
}

fn encode(w: &ReplicaWire) -> AppMsg {
    AppMsg::from(serde_json::to_vec(w).expect("ReplicaWire is serializable"))
}

fn decode(msg: &AppMsg) -> Option<ReplicaWire> {
    serde_json::from_slice(msg.as_bytes()).ok()
}

/// A tiny ready-made [`StateMachine`]: an append-only log of commands
/// (useful for tests and as a template).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogMachine {
    /// Every applied command, in order.
    pub log: Vec<Vec<u8>>,
}

impl StateMachine for LogMachine {
    fn apply(&mut self, cmd: &[u8]) {
        self.log.push(cmd.to_vec());
    }
    fn snapshot(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("LogMachine is serializable")
    }
    fn restore(&mut self, snapshot: &[u8]) {
        *self = serde_json::from_slice(snapshot).expect("snapshot produced by LogMachine");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vsgm_types::{StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn view(epoch: u64, members: &[u64]) -> View {
        View::new(
            ViewId::new(epoch, 0),
            members.iter().map(|&i| p(i)),
            members.iter().map(|&i| (p(i), StartChangeId::new(epoch))),
        )
    }

    /// Instant GCS: multicasts reach every replica in the same per-sender
    /// order, and responses are re-multicast until quiescence.
    fn broadcast(
        replicas: &mut BTreeMap<ProcessId, Replica<LogMachine>>,
        from: ProcessId,
        msg: AppMsg,
    ) {
        let mut queue = vec![(from, msg)];
        while let Some((sender, m)) = queue.pop() {
            let ids: Vec<ProcessId> = replicas.keys().copied().collect();
            for id in ids {
                if let Some(resp) = replicas.get_mut(&id).unwrap().on_deliver(sender, &m) {
                    queue.push((id, resp));
                }
            }
        }
    }

    fn group(members: &[u64], epoch: u64) -> BTreeMap<ProcessId, Replica<LogMachine>> {
        let v = view(epoch, members);
        let t: ProcSet = members.iter().map(|&i| p(i)).collect();
        members
            .iter()
            .map(|&i| {
                let mut r = Replica::new(p(i), LogMachine::default());
                assert!(r.on_view(&v, &t).is_none(), "nobody needs transfer at bootstrap");
                (p(i), r)
            })
            .collect()
    }

    #[test]
    fn replicas_apply_identical_logs() {
        let mut replicas = group(&[1, 2, 3], 1);
        for (i, cmd) in [(2u64, "a"), (1, "b"), (3, "c")] {
            let m = replicas[&p(i)].submit(cmd.as_bytes().to_vec());
            broadcast(&mut replicas, p(i), m);
        }
        let reference = replicas[&p(1)].machine().clone();
        assert_eq!(reference.log.len(), 3);
        for (id, r) in &replicas {
            assert_eq!(r.machine(), &reference, "replica {id} diverged");
            assert_eq!(r.applied(), 3);
        }
    }

    #[test]
    fn joiner_gets_snapshot_from_min_transitional_member() {
        let mut replicas = group(&[1, 2], 1);
        let m = replicas[&p(1)].submit(b"history".to_vec());
        broadcast(&mut replicas, p(1), m);
        // p3 joins with empty state.
        replicas.insert(p(3), Replica::new(p(3), LogMachine::default()));
        let v2 = view(2, &[1, 2, 3]);
        let t_old: ProcSet = [p(1), p(2)].into_iter().collect();
        let t_new: ProcSet = [p(3)].into_iter().collect();
        let mut snapshots = Vec::new();
        for (id, r) in replicas.iter_mut() {
            let t = if *id == p(3) { &t_new } else { &t_old };
            if let Some(s) = r.on_view(&v2, t) {
                snapshots.push((*id, s));
            }
        }
        // One donor per merge component: p1 = min({1,2}) and p3 = min({3}).
        let donors: Vec<ProcessId> = snapshots.iter().map(|(d, _)| *d).collect();
        assert_eq!(donors, vec![p(1), p(3)]);
        for (donor, snap) in snapshots {
            broadcast(&mut replicas, donor, snap);
        }
        // The applied counter arbitrates: p3 adopts p1's longer history,
        // p1/p2 ignore p3's empty snapshot.
        assert_eq!(replicas[&p(3)].machine().log, vec![b"history".to_vec()]);
        assert_eq!(replicas[&p(3)].applied(), 1);
        assert_eq!(replicas[&p(1)].applied(), 1);
    }

    #[test]
    fn members_that_moved_together_skip_transfer() {
        let mut replicas = group(&[1, 2, 3], 1);
        let m = replicas[&p(2)].submit(b"x".to_vec());
        broadcast(&mut replicas, p(2), m);
        // Everyone moves together: T = view.set ⇒ no snapshot at all.
        let v2 = view(2, &[1, 2, 3]);
        let t: ProcSet = [p(1), p(2), p(3)].into_iter().collect();
        for r in replicas.values_mut() {
            assert!(r.on_view(&v2, &t).is_none(), "§4.1.2: no exchange needed");
        }
    }

    #[test]
    fn stale_snapshot_never_regresses_state() {
        let mut fresh = Replica::new(p(1), LogMachine::default());
        let v = view(1, &[1]);
        let t: ProcSet = [p(1)].into_iter().collect();
        fresh.on_view(&v, &t);
        let m = fresh.submit(b"newer".to_vec());
        // Self-deliver through the instant broadcast.
        let mut replicas: BTreeMap<ProcessId, Replica<LogMachine>> =
            [(p(1), fresh)].into_iter().collect();
        broadcast(&mut replicas, p(1), m);
        let before = replicas[&p(1)].machine().clone();
        // A snapshot claiming LESS history arrives: ignored.
        let stale = encode(&ReplicaWire::Snapshot { applied: 0, data: LogMachine::default().snapshot() });
        replicas.get_mut(&p(1)).unwrap().on_deliver(p(9), &stale);
        assert_eq!(replicas[&p(1)].machine(), &before);
    }

    #[test]
    fn log_machine_snapshot_roundtrip() {
        let mut m = LogMachine::default();
        m.apply(b"one");
        m.apply(b"two");
        let snap = m.snapshot();
        let mut n = LogMachine::default();
        n.restore(&snap);
        assert_eq!(m, n);
    }
}
