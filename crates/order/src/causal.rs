//! Causally ordered multicast on top of the within-view FIFO service.
//!
//! The second classic strengthening (§4.1.1 names FIFO as "a basic
//! service upon which one can build stronger services"): deliver messages
//! respecting the happened-before relation. Each message carries a vector
//! timestamp of how many messages from every member the sender had
//! delivered when it sent; a receiver holds a message until its own
//! deliveries dominate that vector. Per-sender FIFO comes from the GCS,
//! so the sender's own component needs no buffering logic.
//!
//! Across view changes, Virtual Synchrony guarantees that members moving
//! together delivered the same message set; since causal predecessors of
//! any committed message are committed too (the committing member had
//! delivered them), every buffered dependency resolves before the view —
//! the layer just resets its clocks per view.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vsgm_types::{AppMsg, ProcSet, ProcessId, View};

/// The wire format: payload plus the sender's delivery vector at send
/// time (excluding the sender's own component, which per-sender FIFO
/// already enforces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalMsg {
    /// `deps[q]` = number of `q`'s messages the sender had delivered.
    pub deps: BTreeMap<ProcessId, u64>,
    /// The application payload.
    pub payload: Vec<u8>,
}

impl CausalMsg {
    /// Encodes into a GCS payload.
    pub fn encode(&self) -> AppMsg {
        AppMsg::from(serde_json::to_vec(self).expect("CausalMsg is serializable"))
    }

    /// Decodes from a GCS payload.
    ///
    /// # Errors
    ///
    /// Returns the JSON error for foreign/corrupt payloads.
    pub fn decode(msg: &AppMsg) -> Result<CausalMsg, serde_json::Error> {
        serde_json::from_slice(msg.as_bytes())
    }
}

/// A causally delivered payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalDelivery {
    /// Original sender.
    pub from: ProcessId,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// The causal-order layer for one group member.
#[derive(Debug)]
pub struct CausalOrder {
    pid: ProcessId,
    /// Messages delivered (released) per sender, this view.
    delivered: BTreeMap<ProcessId, u64>,
    /// Buffered messages whose dependencies are not yet satisfied, per
    /// sender in FIFO order: `(deps, payload)`.
    pending: BTreeMap<ProcessId, Vec<CausalMsg>>,
}

impl CausalOrder {
    /// Creates the layer for `pid`.
    pub fn new(pid: ProcessId) -> Self {
        CausalOrder { pid, delivered: BTreeMap::new(), pending: BTreeMap::new() }
    }

    /// Wraps a payload for multicast, stamping the current delivery
    /// vector.
    pub fn submit(&self, payload: impl Into<Vec<u8>>) -> AppMsg {
        let mut deps = self.delivered.clone();
        deps.remove(&self.pid); // own component enforced by FIFO
        CausalMsg { deps, payload: payload.into() }.encode()
    }

    /// Feeds one GCS delivery; returns everything now causally
    /// deliverable (possibly including earlier buffered messages).
    pub fn on_deliver(&mut self, from: ProcessId, msg: &AppMsg) -> Vec<CausalDelivery> {
        let Ok(cm) = CausalMsg::decode(msg) else { return Vec::new() };
        self.pending.entry(from).or_default().push(cm);
        self.drain()
    }

    /// Feeds a view change: Virtual Synchrony has equalized the delivered
    /// sets, so any still-buffered messages are flushed deterministically
    /// and the clocks reset.
    pub fn on_view(&mut self, _view: &View, _transitional: &ProcSet) -> Vec<CausalDelivery> {
        let mut out = self.drain();
        for (from, msgs) in std::mem::take(&mut self.pending) {
            for m in msgs {
                out.push(CausalDelivery { from, payload: m.payload });
            }
        }
        self.delivered.clear();
        out
    }

    fn satisfied(&self, deps: &BTreeMap<ProcessId, u64>) -> bool {
        deps.iter().all(|(q, need)| self.delivered.get(q).copied().unwrap_or(0) >= *need)
    }

    fn drain(&mut self) -> Vec<CausalDelivery> {
        let mut out = Vec::new();
        loop {
            let mut progressed = false;
            let senders: Vec<ProcessId> = self.pending.keys().copied().collect();
            for s in senders {
                // Per-sender FIFO: only the head may be considered.
                let head_ok = self
                    .pending
                    .get(&s)
                    .and_then(|v| v.first())
                    .is_some_and(|m| self.satisfied(&m.deps));
                if head_ok {
                    let m = self.pending.get_mut(&s).expect("present").remove(0);
                    *self.delivered.entry(s).or_insert(0) += 1;
                    out.push(CausalDelivery { from: s, payload: m.payload });
                    progressed = true;
                }
            }
            if !progressed {
                return out;
            }
        }
    }

    /// Number of messages buffered awaiting dependencies.
    pub fn pending_len(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn independent_messages_deliver_immediately() {
        let mut c = CausalOrder::new(p(1));
        let m = CausalOrder::new(p(2)).submit(b"hi".to_vec());
        let out = c.on_deliver(p(2), &m);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, b"hi");
    }

    #[test]
    fn dependent_message_waits_for_its_cause() {
        // p3 sends m1; p2 delivers m1 and replies with m2 (m1 → m2).
        // p1 receives m2 BEFORE m1: must buffer m2.
        let sender3 = CausalOrder::new(p(3));
        let m1 = sender3.submit(b"cause".to_vec());

        let mut relay2 = CausalOrder::new(p(2));
        assert_eq!(relay2.on_deliver(p(3), &m1).len(), 1);
        let m2 = relay2.submit(b"effect".to_vec());

        let mut receiver = CausalOrder::new(p(1));
        let out = receiver.on_deliver(p(2), &m2);
        assert!(out.is_empty(), "effect must wait for cause");
        assert_eq!(receiver.pending_len(), 1);
        let out = receiver.on_deliver(p(3), &m1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, b"cause");
        assert_eq!(out[1].payload, b"effect");
    }

    #[test]
    fn chains_of_dependencies_release_in_order() {
        // m1 (p2) → m2 (p3) → m3 (p4); receiver gets them reversed.
        let a = CausalOrder::new(p(2));
        let m1 = a.submit(b"1".to_vec());
        let mut b = CausalOrder::new(p(3));
        b.on_deliver(p(2), &m1);
        let m2 = b.submit(b"2".to_vec());
        let mut c = CausalOrder::new(p(4));
        c.on_deliver(p(2), &m1);
        c.on_deliver(p(3), &m2);
        let m3 = c.submit(b"3".to_vec());

        let mut r = CausalOrder::new(p(1));
        assert!(r.on_deliver(p(4), &m3).is_empty());
        assert!(r.on_deliver(p(3), &m2).is_empty());
        let out = r.on_deliver(p(2), &m1);
        let got: Vec<&[u8]> = out.iter().map(|d| d.payload.as_slice()).collect();
        assert_eq!(got, vec![b"1".as_slice(), b"2", b"3"]);
    }

    #[test]
    fn per_sender_fifo_respected_even_when_later_msg_satisfiable() {
        // p2's second message has no deps but must not overtake its first.
        let mut relay = CausalOrder::new(p(2));
        let m_dep = CausalOrder::new(p(3)).submit(b"x".to_vec());
        relay.on_deliver(p(3), &m_dep);
        let first = relay.submit(b"first".to_vec()); // depends on p3's msg
        let second_direct = CausalMsg { deps: BTreeMap::new(), payload: b"second".to_vec() };

        let mut r = CausalOrder::new(p(1));
        assert!(r.on_deliver(p(2), &first).is_empty());
        assert!(
            r.on_deliver(p(2), &second_direct.encode()).is_empty(),
            "second must not overtake first (FIFO)"
        );
        let out = r.on_deliver(p(3), &m_dep);
        let got: Vec<&[u8]> = out.iter().map(|d| d.payload.as_slice()).collect();
        assert_eq!(got, vec![b"x".as_slice(), b"first", b"second"]);
    }

    #[test]
    fn view_change_flushes_and_resets() {
        let mut r = CausalOrder::new(p(1));
        let orphan = CausalMsg {
            deps: [(p(9), 5)].into_iter().collect(),
            payload: b"stranded".to_vec(),
        };
        assert!(r.on_deliver(p(2), &orphan.encode()).is_empty());
        let v = View::initial(p(1));
        let out = r.on_view(&v, &ProcSet::new());
        assert_eq!(out.len(), 1);
        assert_eq!(r.pending_len(), 0);
        // Clocks reset: a fresh message with no deps flows.
        let m = CausalOrder::new(p(2)).submit(b"fresh".to_vec());
        assert_eq!(r.on_deliver(p(2), &m).len(), 1);
    }

    #[test]
    fn foreign_payloads_ignored() {
        let mut r = CausalOrder::new(p(1));
        assert!(r.on_deliver(p(2), &AppMsg::from("not json")).is_empty());
    }
}
