//! **vsgm-order** — totally ordered multicast on top of the virtually
//! synchronous FIFO service.
//!
//! The paper provides FIFO multicast "since FIFO is a basic service upon
//! which one can build stronger services. For example, the totally
//! ordered multicast algorithm of \[13\] is implemented atop a service that
//! satisfies the `WV_RFIFO` specification" (§4.1.1). This crate is that
//! layering: a sequencer-based total order protocol whose correctness
//! across view changes comes directly from Virtual Synchrony and
//! Transitional Sets.
//!
//! # Protocol
//!
//! Within a view, the member with the smallest id is the *sequencer*.
//! Every payload is multicast through the GCS as a [`Wrapper::Data`]
//! message; the sequencer assigns global positions by multicasting
//! [`Wrapper::Order`] references `(sender, per-sender index)` as it
//! delivers data messages. Everyone delivers payloads in `Order`
//! sequence (the sequencer's own delivery order).
//!
//! On a view change the GCS guarantees (Virtual Synchrony) that all
//! members transitioning together delivered the *same set* of data
//! messages; those not yet covered by an `Order` are therefore identical
//! everywhere in the transitional set, and every member deterministically
//! flushes them — sorted by `(sender, index)` — before touching the new
//! view's traffic. No extra agreement round is needed: exactly the
//! application pattern Virtual Synchrony exists to enable (§4.1.2).
//!
//! The layer is transport-free: feed it the GCS's application-facing
//! events, multicast whatever it returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod replica;

pub use causal::{CausalDelivery, CausalMsg, CausalOrder};
pub use replica::{LogMachine, Replica, StateMachine};

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use vsgm_types::{AppMsg, ProcSet, ProcessId, View};

/// The wire format this layer encodes into GCS application payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Wrapper {
    /// An application payload awaiting ordering.
    Data(Vec<u8>),
    /// Sequencer-assigned positions: `(sender, 1-based per-sender index)`
    /// pairs, in global delivery order.
    Order(Vec<(ProcessId, u64)>),
}

impl Wrapper {
    /// Encodes into a GCS payload.
    ///
    /// # Panics
    ///
    /// Never panics: the type is always serializable.
    pub fn encode(&self) -> AppMsg {
        AppMsg::from(serde_json::to_vec(self).expect("Wrapper is serializable"))
    }

    /// Decodes from a GCS payload.
    ///
    /// # Errors
    ///
    /// Returns the JSON error for foreign/corrupt payloads.
    pub fn decode(msg: &AppMsg) -> Result<Wrapper, serde_json::Error> {
        serde_json::from_slice(msg.as_bytes())
    }
}

/// A payload delivered in total order.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedMsg {
    /// The original sender.
    pub from: ProcessId,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// The total-order layer for one group member.
#[derive(Debug)]
pub struct TotalOrder {
    pid: ProcessId,
    view_members: ProcSet,
    /// Data messages delivered from the GCS this view, per sender, by
    /// 1-based index (GCS FIFO makes indices implicit).
    data: BTreeMap<ProcessId, Vec<Vec<u8>>>,
    /// Global positions announced by the sequencer, not yet flushed.
    order: VecDeque<(ProcessId, u64)>,
    /// Next per-sender index to be ordered by *us* when we are sequencer.
    seq_next: BTreeMap<ProcessId, u64>,
    /// Next per-sender index already released to the application.
    released: BTreeMap<ProcessId, u64>,
}

impl TotalOrder {
    /// Creates the layer for `pid`, alone in its initial view.
    pub fn new(pid: ProcessId) -> Self {
        TotalOrder {
            pid,
            view_members: [pid].into_iter().collect(),
            data: BTreeMap::new(),
            order: VecDeque::new(),
            seq_next: BTreeMap::new(),
            released: BTreeMap::new(),
        }
    }

    /// The current sequencer: the smallest member id.
    pub fn sequencer(&self) -> ProcessId {
        *self.view_members.iter().next().expect("view contains self")
    }

    /// Whether this member is the sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.sequencer() == self.pid
    }

    /// Wraps an application payload for multicast through the GCS.
    pub fn submit(&self, payload: impl Into<Vec<u8>>) -> AppMsg {
        Wrapper::Data(payload.into()).encode()
    }

    /// Feeds one GCS delivery. Returns the payloads now deliverable in
    /// total order, plus any `Order` message the sequencer must multicast
    /// (via the GCS) in response.
    pub fn on_deliver(&mut self, from: ProcessId, msg: &AppMsg) -> (Vec<OrderedMsg>, Option<AppMsg>) {
        match Wrapper::decode(msg) {
            Ok(Wrapper::Data(payload)) => {
                self.data.entry(from).or_default().push(payload);
                let mut announce = None;
                if self.is_sequencer() {
                    let next = self.seq_next.entry(from).or_insert(1);
                    let idx = *next;
                    *next += 1;
                    self.order.push_back((from, idx));
                    announce = Some(Wrapper::Order(vec![(from, idx)]).encode());
                }
                (self.release(), announce)
            }
            Ok(Wrapper::Order(entries)) => {
                if from == self.sequencer() && from != self.pid {
                    self.order.extend(entries);
                }
                (self.release(), None)
            }
            Err(_) => (Vec::new(), None), // foreign payload: not ours to order
        }
    }

    /// Feeds a GCS view change. Virtual Synchrony lets every member of
    /// the transitional set flush the identical un-ordered backlog
    /// deterministically; returns those flushed payloads (in the agreed
    /// order) and resets per-view state.
    pub fn on_view(&mut self, view: &View, _transitional: &ProcSet) -> Vec<OrderedMsg> {
        // Release whatever the sequencer had ordered first.
        let mut out = self.release();
        // Deterministic flush of the rest: sorted by (sender, index).
        let mut leftovers: Vec<(ProcessId, u64)> = Vec::new();
        for (sender, msgs) in &self.data {
            let done = self.released.get(sender).copied().unwrap_or(0);
            for idx in (done + 1)..=(msgs.len() as u64) {
                leftovers.push((*sender, idx));
            }
        }
        leftovers.sort_unstable();
        for (sender, idx) in leftovers {
            let payload = self.data[&sender][(idx - 1) as usize].clone();
            out.push(OrderedMsg { from: sender, payload });
        }
        // Fresh view: counters restart (GCS delivery indices restart too).
        self.view_members = view.members().clone();
        self.data.clear();
        self.order.clear();
        self.seq_next.clear();
        self.released.clear();
        out
    }

    /// Releases every ordered position whose data has arrived, in order.
    fn release(&mut self) -> Vec<OrderedMsg> {
        let mut out = Vec::new();
        while let Some((sender, idx)) = self.order.front().copied() {
            let available = self.data.get(&sender).map_or(0, |v| v.len() as u64);
            if idx > available {
                break; // data not here yet; FIFO says it will be
            }
            self.order.pop_front();
            let expected = self.released.get(&sender).copied().unwrap_or(0) + 1;
            debug_assert_eq!(idx, expected, "sequencer references are dense per sender");
            self.released.insert(sender, idx);
            out.push(OrderedMsg {
                from: sender,
                payload: self.data[&sender][(idx - 1) as usize].clone(),
            });
        }
        out
    }

    /// Number of data messages buffered but not yet released.
    pub fn backlog(&self) -> usize {
        let total: usize = self.data.values().map(Vec::len).sum();
        let released: u64 = self.released.values().copied().sum();
        total - released as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsgm_types::{StartChangeId, ViewId};

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn view(epoch: u64, members: &[u64]) -> View {
        View::new(
            ViewId::new(epoch, 0),
            members.iter().map(|&i| p(i)),
            members.iter().map(|&i| (p(i), StartChangeId::new(epoch))),
        )
    }

    /// Simulates GCS FIFO delivery of the same messages to several
    /// TotalOrder layers, with the sequencer's Order messages fed back.
    fn run_group(members: &[u64], sends: &[(u64, &str)]) -> Vec<Vec<OrderedMsg>> {
        let v = view(1, members);
        let mut layers: Vec<TotalOrder> = members
            .iter()
            .map(|&i| {
                let mut t = TotalOrder::new(p(i));
                t.on_view(&v, &v.members().clone());
                t
            })
            .collect();
        let mut outputs: Vec<Vec<OrderedMsg>> = vec![Vec::new(); members.len()];
        // GCS delivers every data message to every member (same per-sender
        // FIFO order); sequencer's Order messages are delivered to all
        // right after it produces them (FIFO from the sequencer).
        for (sender, payload) in sends {
            let wrapped = Wrapper::Data(payload.as_bytes().to_vec()).encode();
            let mut announce = None;
            for (k, layer) in layers.iter_mut().enumerate() {
                let (out, ann) = layer.on_deliver(p(*sender), &wrapped);
                outputs[k].extend(out);
                if ann.is_some() {
                    announce = ann;
                }
            }
            if let Some(order_msg) = announce {
                let seq = *members.iter().min().unwrap();
                for (k, layer) in layers.iter_mut().enumerate() {
                    let (out, none) = layer.on_deliver(p(seq), &order_msg);
                    assert!(none.is_none());
                    outputs[k].extend(out);
                }
            }
        }
        outputs
    }

    #[test]
    fn all_members_deliver_same_total_order() {
        let outs = run_group(&[1, 2, 3], &[(2, "a"), (3, "b"), (2, "c"), (1, "d")]);
        assert_eq!(outs[0].len(), 4);
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn sequencer_is_min_member() {
        let mut t = TotalOrder::new(p(5));
        let v = view(1, &[3, 5, 9]);
        t.on_view(&v, &v.members().clone());
        assert_eq!(t.sequencer(), p(3));
        assert!(!t.is_sequencer());
    }

    #[test]
    fn order_before_data_is_buffered() {
        // A follower receives the sequencer's Order before the data
        // message (different channels): it must wait.
        let v = view(1, &[1, 2, 3]);
        let mut follower = TotalOrder::new(p(3));
        follower.on_view(&v, &v.members().clone());
        let order = Wrapper::Order(vec![(p(2), 1)]).encode();
        let (out, _) = follower.on_deliver(p(1), &order);
        assert!(out.is_empty(), "data missing: nothing released");
        let data = Wrapper::Data(b"x".to_vec()).encode();
        let (out, _) = follower.on_deliver(p(2), &data);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, b"x");
    }

    #[test]
    fn order_from_non_sequencer_ignored() {
        let v = view(1, &[1, 2, 3]);
        let mut t = TotalOrder::new(p(3));
        t.on_view(&v, &v.members().clone());
        let bogus = Wrapper::Order(vec![(p(2), 1)]).encode();
        t.on_deliver(p(2), &bogus); // p2 is not the sequencer
        let data = Wrapper::Data(b"x".to_vec()).encode();
        let (out, _) = t.on_deliver(p(2), &data);
        assert!(out.is_empty(), "bogus order must not release anything");
    }

    #[test]
    fn view_change_flushes_unordered_backlog_deterministically() {
        let v1 = view(1, &[1, 2, 3]);
        let v2 = view(2, &[2, 3]);
        // Members 2 and 3 both delivered the same data (VS guarantee) but
        // never saw an Order for it (sequencer 1 died).
        let mk = |i: u64| {
            let mut t = TotalOrder::new(p(i));
            t.on_view(&v1, &v1.members().clone());
            let (o1, _) = t.on_deliver(p(3), &Wrapper::Data(b"b".to_vec()).encode());
            let (o2, _) = t.on_deliver(p(2), &Wrapper::Data(b"a".to_vec()).encode());
            assert!(o1.is_empty() && o2.is_empty());
            t
        };
        let mut t2 = mk(2);
        let mut t3 = mk(3);
        let trans: ProcSet = [p(2), p(3)].into_iter().collect();
        let f2 = t2.on_view(&v2, &trans);
        let f3 = t3.on_view(&v2, &trans);
        assert_eq!(f2, f3, "flush order must agree");
        assert_eq!(f2.len(), 2);
        // Deterministic (sender, index) order: p2's message before p3's.
        assert_eq!(f2[0].from, p(2));
        assert_eq!(f2[1].from, p(3));
        // New sequencer.
        assert_eq!(t2.sequencer(), p(2));
        assert!(t2.is_sequencer());
    }

    #[test]
    fn backlog_tracks_unreleased() {
        let v = view(1, &[1, 2]);
        let mut t = TotalOrder::new(p(2));
        t.on_view(&v, &v.members().clone());
        t.on_deliver(p(1), &Wrapper::Data(b"x".to_vec()).encode());
        assert_eq!(t.backlog(), 1);
        let (out, _) = t.on_deliver(p(1), &Wrapper::Order(vec![(p(1), 1)]).encode());
        assert_eq!(out.len(), 1);
        assert_eq!(t.backlog(), 0);
    }

    #[test]
    fn foreign_payloads_ignored() {
        let mut t = TotalOrder::new(p(1));
        let (out, ann) = t.on_deliver(p(2), &AppMsg::from("not json"));
        assert!(out.is_empty() && ann.is_none());
    }

    #[test]
    fn wrapper_roundtrip() {
        let w = Wrapper::Order(vec![(p(1), 3), (p(2), 1)]);
        let enc = w.encode();
        assert_eq!(Wrapper::decode(&enc).unwrap(), w);
    }
}
