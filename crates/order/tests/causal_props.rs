//! Property tests for the causal-order layer: under arbitrary per-sender
//! FIFO-preserving interleavings of the same message history, every
//! receiver releases payloads respecting happened-before.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vsgm_order::CausalOrder;
use vsgm_types::{AppMsg, ProcessId};

const N: u64 = 4;

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

/// Per-sender FIFO streams of encoded messages.
type Streams = BTreeMap<ProcessId, Vec<AppMsg>>;

/// Builds a causal history: a random sequence of "process i sends" where
/// each send is stamped by that process's layer (which has delivered
/// everything broadcast before it, in order). Returns per-sender FIFO
/// streams of encoded messages plus the global happened-before order.
fn build_history(sends: &[u64]) -> (Streams, Vec<(ProcessId, usize)>) {
    let mut layers: BTreeMap<ProcessId, CausalOrder> =
        (1..=N).map(|i| (p(i), CausalOrder::new(p(i)))).collect();
    let mut streams: BTreeMap<ProcessId, Vec<AppMsg>> = Default::default();
    let mut global: Vec<(ProcessId, usize)> = Vec::new();
    for (k, s) in sends.iter().enumerate() {
        let sender = p(1 + s % N);
        let msg = layers[&sender].submit(format!("g{k}").into_bytes());
        // Everyone (including the sender) delivers it right away in this
        // construction, so later sends causally depend on all earlier ones.
        for (pid, layer) in layers.iter_mut() {
            let out = layer.on_deliver(sender, &msg);
            assert_eq!(out.len(), 1, "construction delivers instantly at {pid}");
        }
        let idx = streams.entry(sender).or_default().len();
        streams.entry(sender).or_default().push(msg);
        global.push((sender, idx));
    }
    (streams, global)
}

/// Replays the streams to a fresh receiver in an arbitrary interleaving
/// that preserves per-sender order (what the GCS guarantees), collecting
/// the release order.
fn replay(
    streams: &Streams,
    mut pick: impl FnMut(&[ProcessId]) -> usize,
) -> Vec<Vec<u8>> {
    let mut receiver = CausalOrder::new(p(99));
    let mut cursors: BTreeMap<ProcessId, usize> = Default::default();
    let mut out = Vec::new();
    loop {
        let avail: Vec<ProcessId> = streams
            .iter()
            .filter(|(s, msgs)| cursors.get(s).copied().unwrap_or(0) < msgs.len())
            .map(|(s, _)| *s)
            .collect();
        if avail.is_empty() {
            break;
        }
        let s = avail[pick(&avail) % avail.len()];
        let i = cursors.entry(s).or_insert(0);
        let msg = &streams[&s][*i];
        *i += 1;
        for d in receiver.on_deliver(s, msg) {
            out.push(d.payload);
        }
    }
    assert_eq!(receiver.pending_len(), 0, "everything must eventually release");
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn causal_release_matches_global_order(
        sends in prop::collection::vec(0u64..N, 1..20),
        picks in prop::collection::vec(0usize..16, 0..200),
    ) {
        let (streams, _global) = build_history(&sends);
        let mut k = 0usize;
        let order = replay(&streams, |_| {
            let v = picks.get(k).copied().unwrap_or(0);
            k += 1;
            v
        });
        // In this totally-dependent history, the ONLY causal release order
        // is the global send order.
        let expected: Vec<Vec<u8>> =
            (0..sends.len()).map(|i| format!("g{i}").into_bytes()).collect();
        prop_assert_eq!(order, expected);
    }

    #[test]
    fn concurrent_messages_release_completely(
        burst_per_sender in 1usize..8,
        picks in prop::collection::vec(0usize..16, 0..200),
    ) {
        // Fully concurrent history: nobody delivers anyone else before
        // sending, so any per-sender-FIFO interleaving is causal.
        let mut streams: Streams = Default::default();
        for i in 1..=N {
            let layer = CausalOrder::new(p(i));
            for k in 0..burst_per_sender {
                streams.entry(p(i)).or_default().push(
                    layer.submit(format!("{i}:{k}").into_bytes()),
                );
            }
        }
        let mut idx = 0usize;
        let order = replay(&streams, |_| {
            let v = picks.get(idx).copied().unwrap_or(0);
            idx += 1;
            v
        });
        prop_assert_eq!(order.len(), burst_per_sender * N as usize);
        // Per-sender FIFO is preserved in the release order.
        for i in 1..=N {
            let seq: Vec<&Vec<u8>> = order
                .iter()
                .filter(|m| m.starts_with(format!("{i}:").as_bytes()))
                .collect();
            for (k, m) in seq.iter().enumerate() {
                prop_assert_eq!(*m, &format!("{i}:{k}").into_bytes());
            }
        }
    }
}
