//! StateAudit false-positive cross-check (DESIGN.md §15).
//!
//! The audit's legal-state predicate must be *sound*: a state the
//! protocol can actually reach under fault-free operation must never be
//! flagged, or the §8 reconciliation would crash healthy endpoints. The
//! chaos tier samples; here we prove it on the small models — a
//! state-deduplicating DFS visits **every** composition state reachable
//! in the seed configurations and runs [`vsgm_core::audit::check`] on
//! every endpoint of every state. One rejected state fails the suite
//! with the offending configuration, process, check, and full state.
//!
//! (The `corruption` seed is included too: its fault is audited and
//! reconciled atomically inside the macro-step, so every *visited* state
//! is post-reconciliation and must equally satisfy the predicate.)

use std::collections::BTreeSet;
use vsgm_explore::{ExploreConfig, Machine, State};

/// FNV-1a over the state's `Debug` rendering — endpoints and channels
/// are plain data with deterministic (BTree) iteration, so equal states
/// render identically.
fn fingerprint(st: &State) -> u64 {
    let repr = format!("{st:?}");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in repr.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn audit_state(cfg: &ExploreConfig, st: &State) -> usize {
    let mut audited = 0;
    for (p, ep) in &st.eps {
        if let Err(e) = vsgm_core::audit::check(&cfg.endpoint, ep.state()) {
            panic!(
                "{}: audit rejected a legally reachable state at {p}: {e}\nstate: {:#?}",
                cfg.name,
                ep.state()
            );
        }
        audited += 1;
    }
    audited
}

fn walk(
    m: &mut Machine<'_>,
    cfg: &ExploreConfig,
    st: &State,
    seen: &mut BTreeSet<u64>,
    audited: &mut usize,
    depth: usize,
) {
    assert!(depth < cfg.max_depth, "{}: runaway walk", cfg.name);
    if !seen.insert(fingerprint(st)) {
        return;
    }
    *audited += audit_state(cfg, st);
    for t in m.enabled(st) {
        let mut next = st.clone();
        let mark = m.trace.len();
        m.apply(&mut next, &t);
        m.trace.truncate(mark); // the trace is not judged here
        walk(m, cfg, &next, seen, audited, depth + 1);
    }
}

#[test]
fn audit_accepts_every_reachable_state_of_every_seed_config() {
    for cfg in ExploreConfig::seeds() {
        let mut m = Machine::new(&cfg);
        let root = m.initial();
        let mut seen = BTreeSet::new();
        let mut audited = 0usize;
        walk(&mut m, &cfg, &root, &mut seen, &mut audited, 0);
        // A trivially small walk would make the check vacuous; every
        // seed reaches a substantial state space (the exact counts are
        // pinned in `paths.rs` — here a floor suffices).
        assert!(
            seen.len() >= 60,
            "{}: only {} distinct states visited",
            cfg.name,
            seen.len()
        );
        assert_eq!(audited, seen.len() * cfg.n as usize);
    }
}
