//! Pinned exploration regressions for the seed configurations.
//!
//! The exact path / pruned / state counts are pinned: a DPOR pruning bug
//! (e.g. a sleep set that starts dropping or double-counting
//! interleavings) and a protocol change that alters the reachable state
//! space both fail loudly here, and the canonical configuration proves
//! the pruned enumeration is a strict subset of the raw one.

use vsgm_explore::{explore, replay, ExploreConfig, ExploreOptions, ExtEvent, ExtKind, Stats};
use vsgm_types::{ProcessId, StartChangeId};

fn dpor() -> ExploreOptions {
    ExploreOptions { dpor: true }
}

fn unpruned() -> ExploreOptions {
    ExploreOptions { dpor: false }
}

#[test]
fn canonical_counts_are_pinned_and_dpor_prunes_strictly() {
    let cfg = ExploreConfig::canonical();

    let with_dpor = explore(&cfg, &dpor());
    assert!(with_dpor.is_clean(), "{:?}", with_dpor.counterexample);
    assert_eq!(
        with_dpor.stats,
        Stats { paths: 127, pruned: 67, states: 65, max_depth: 12, violating_paths: 0 }
    );

    let raw = explore(&cfg, &unpruned());
    assert!(raw.is_clean(), "{:?}", raw.counterexample);
    assert_eq!(
        raw.stats,
        Stats { paths: 5520, pruned: 0, states: 65, max_depth: 12, violating_paths: 0 }
    );

    // The acceptance bar for the pruner: strictly fewer judged paths,
    // yet the same reachable states (sleep sets skip interleavings, not
    // behavior).
    assert!(with_dpor.stats.paths < raw.stats.paths);
    assert_eq!(with_dpor.stats.states, raw.stats.states);
}

#[test]
fn aggregation_counts_are_pinned() {
    // §9 two-tier leader aggregation through a view change: every
    // interleaving of contribution arrival, aggregate flush, and view
    // delivery at three members (core/src/aggregation.rs coverage far
    // beyond the unit tests' fixed orders).
    let outcome = explore(&ExploreConfig::aggregation(), &dpor());
    assert!(outcome.is_clean(), "{:?}", outcome.counterexample);
    assert_eq!(
        outcome.stats,
        Stats { paths: 17816, pruned: 47566, states: 820, max_depth: 19, violating_paths: 0 }
    );
}

#[test]
fn crash_recovery_counts_are_pinned() {
    let outcome = explore(&ExploreConfig::crash_recovery(), &dpor());
    assert!(outcome.is_clean(), "{:?}", outcome.counterexample);
    assert_eq!(
        outcome.stats,
        Stats { paths: 2425, pruned: 973, states: 130, max_depth: 13, violating_paths: 0 }
    );
}

#[test]
fn corruption_counts_are_pinned_and_every_path_converges() {
    // Self-stabilization under exhaustive scheduling (DESIGN.md §15):
    // the membership-scrambling fault at p3 fires at every possible
    // position relative to the survivors' view change and the delivery
    // of p3's in-flight multicast. On every path the armed audit must
    // detect it, the §8 reconciliation must render as a legal
    // crash/recover pair, and the survivors must still install the
    // final view — zero violating paths *is* the convergence claim.
    let outcome = explore(&ExploreConfig::corruption(), &dpor());
    assert!(outcome.is_clean(), "{:?}", outcome.counterexample);
    assert_eq!(
        outcome.stats,
        Stats { paths: 144391, pruned: 55923, states: 1386, max_depth: 18, violating_paths: 0 }
    );
}

/// A configuration scripted to violate the membership safety spec: after
/// the initial view installs with start-change id 5, the service hands
/// `p1` a *non-monotonic* start-change (id 3). Fig. 2 requires strictly
/// increasing ids, so every path must be flagged by `MBRSHP`.
fn non_monotonic_start_change() -> ExploreConfig {
    let p = ProcessId::new;
    let members = [1u64, 2];
    let first = vsgm_explore::config::view_of(1, 5, &members);
    let set = first.members().clone();
    let mut setup = Vec::new();
    for &m in &members {
        setup.push(ExtEvent {
            p: p(m),
            kind: ExtKind::StartChange { cid: StartChangeId::new(5), set: set.clone() },
            after: vec![],
        });
    }
    for &m in &members {
        setup.push(ExtEvent { p: p(m), kind: ExtKind::View(first.clone()), after: vec![] });
    }
    let events = vec![ExtEvent {
        p: p(1),
        kind: ExtKind::StartChange { cid: StartChangeId::new(3), set },
        after: vec![],
    }];
    ExploreConfig {
        name: "bad-mbrshp".to_string(),
        n: 2,
        endpoint: vsgm_core::Config::default(),
        setup,
        preload: Vec::new(),
        events,
        final_view: None,
        max_depth: 2_000,
    }
}

#[test]
fn violation_yields_a_replayable_counterexample() {
    let cfg = non_monotonic_start_change();
    let outcome = explore(&cfg, &dpor());

    // Every path carries the illegal notification, so every path is
    // flagged and the first one is captured as the counterexample.
    assert_eq!(outcome.stats.violating_paths, outcome.stats.paths);
    let cex = outcome.counterexample.expect("a counterexample must be captured");
    assert!(
        cex.violations.iter().any(|v| v.checker == "MBRSHP"),
        "expected an MBRSHP violation, got {:?}",
        cex.violations
    );
    assert!(!cex.schedule.is_empty());
    assert_eq!(cex.trace.len(), cex.trace.last().map_or(0, |e| e.step as usize + 1));

    // The rendered report is replayable: the schedule deterministically
    // reproduces the identical trace and the identical verdict.
    let (entries, violations) = replay(&cfg, &cex.schedule);
    assert_eq!(entries, cex.trace);
    assert_eq!(violations, cex.violations);

    // The render mentions the failing checker and the schedule length.
    let report = cex.render();
    assert!(report.contains("MBRSHP"), "{report}");
    assert!(report.contains("== schedule =="), "{report}");
}

#[test]
fn stuck_scripted_events_are_reported() {
    // A send gated behind a block that no view ever resolves: the
    // composition quiesces with the send unfired, which the trace
    // checkers cannot see — the explorer must flag it itself.
    let p = ProcessId::new;
    let members = [1u64, 2];
    let first = vsgm_explore::config::view_of(1, 1, &members);
    let set = first.members().clone();
    let mut setup = Vec::new();
    for &m in &members {
        setup.push(ExtEvent {
            p: p(m),
            kind: ExtKind::StartChange { cid: StartChangeId::new(1), set: set.clone() },
            after: vec![],
        });
    }
    for &m in &members {
        setup.push(ExtEvent { p: p(m), kind: ExtKind::View(first.clone()), after: vec![] });
    }
    let events = vec![
        // A second change begins (blocking the client)…
        ExtEvent {
            p: p(1),
            kind: ExtKind::StartChange { cid: StartChangeId::new(2), set: set.clone() },
            after: vec![],
        },
        // …but the view never arrives, so this send stays gated forever.
        ExtEvent {
            p: p(1),
            kind: ExtKind::Send(vsgm_types::AppMsg::from("never")),
            after: vec![0],
        },
    ];
    let cfg = ExploreConfig {
        name: "stuck-send".to_string(),
        n: 2,
        endpoint: vsgm_core::Config::default(),
        setup,
        preload: Vec::new(),
        events,
        final_view: None,
        max_depth: 2_000,
    };
    let outcome = explore(&cfg, &dpor());
    let cex = outcome.counterexample.expect("stuck send must be reported");
    assert!(
        cex.violations.iter().any(|v| v.checker == "EXPLORE:STUCK"),
        "{:?}",
        cex.violations
    );
}
