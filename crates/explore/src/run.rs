//! The DFS explorer: exhaustive enumeration with sleep-set pruning,
//! per-path judging by the shared spec suite, and counterexample
//! capture/replay.

use crate::config::ExploreConfig;
use crate::machine::{Machine, State, Transition};
use vsgm_ioa::{SimTime, SleepSet, TraceEntry, Violation};
use vsgm_types::Event;

/// Explorer options.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Prune with sleep sets (DPOR). `false` enumerates every raw
    /// interleaving — used by the regression tests to pin the unpruned
    /// path count strictly above the pruned one.
    pub dpor: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions { dpor: true }
    }
}

/// Exploration statistics; the canonical numbers are pinned as
/// regressions (a pruning bug or a protocol change that alters the
/// reachable space fails loudly).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Terminal (quiescent, fully scripted) paths judged.
    pub paths: u64,
    /// Branches abandoned because every enabled transition slept.
    pub pruned: u64,
    /// Distinct composition states visited (by state hash).
    pub states: u64,
    /// Longest path, in transitions.
    pub max_depth: usize,
    /// Paths on which at least one checker rejected the trace.
    pub violating_paths: u64,
}

/// A failing path: the schedule that reproduces it, the violations, and
/// the full event trace — everything needed to replay and debug it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The transition sequence from the initial state; feed it back to
    /// [`replay`] to reproduce the run.
    pub schedule: Vec<Transition>,
    /// What the checkers rejected.
    pub violations: Vec<Violation>,
    /// The recorded trace of the failing path.
    pub trace: Vec<TraceEntry>,
}

impl Counterexample {
    /// Renders the counterexample as a replayable report: the violations,
    /// the schedule (one transition per line), and the trace as JSON
    /// lines (parseable by `vsgm_ioa::Trace::from_json_lines`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== violations ==\n");
        for v in &self.violations {
            out.push_str(&format!("{v}\n"));
        }
        out.push_str("== schedule ==\n");
        for (i, t) in self.schedule.iter().enumerate() {
            out.push_str(&format!("{i:4}  {t:?}\n"));
        }
        out.push_str("== trace (JSON lines) ==\n");
        for e in &self.trace {
            let line = serde_json::to_string(e).unwrap_or_else(|_| "<unserializable>".into());
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// The result of exploring one configuration.
#[derive(Debug)]
pub struct Outcome {
    /// Aggregate statistics.
    pub stats: Stats,
    /// The first failing path found, if any.
    pub counterexample: Option<Counterexample>,
}

impl Outcome {
    /// Whether every explored path satisfied every checker.
    pub fn is_clean(&self) -> bool {
        self.stats.violating_paths == 0
    }
}

fn to_entries(events: &[Event]) -> Vec<TraceEntry> {
    events
        .iter()
        .enumerate()
        .map(|(i, e)| TraceEntry { step: i as u64, time: SimTime::ZERO, event: e.clone() })
        .collect()
}

/// FNV-1a over the debug rendering of the full composition state — a
/// cheap, dependency-free state fingerprint for the distinct-state count.
fn state_hash(st: &State) -> u64 {
    let repr = format!("{st:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in repr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Dfs<'a> {
    m: Machine<'a>,
    cfg: &'a ExploreConfig,
    opts: ExploreOptions,
    stats: Stats,
    seen: std::collections::BTreeSet<u64>,
    schedule: Vec<Transition>,
    counterexample: Option<Counterexample>,
}

impl Dfs<'_> {
    fn go(&mut self, st: &State, sleep: SleepSet<Transition>, depth: usize) {
        assert!(
            depth <= self.cfg.max_depth,
            "{}: path exceeded {} transitions (livelock?)",
            self.cfg.name,
            self.cfg.max_depth
        );
        let enabled = self.m.enabled(st);
        if enabled.is_empty() {
            self.terminal(st);
            return;
        }
        let explorable: Vec<Transition> = if self.opts.dpor {
            enabled.into_iter().filter(|t| !sleep.contains(t)).collect()
        } else {
            enabled
        };
        if explorable.is_empty() {
            // Every enabled transition is asleep: an equivalent
            // interleaving is explored from a sibling branch.
            self.stats.pruned += 1;
            return;
        }
        let mut sleep_here = sleep;
        for t in explorable {
            let mut child = st.clone();
            let mark = self.m.trace.len();
            self.m.apply(&mut child, &t);
            if self.seen.insert(state_hash(&child)) {
                self.stats.states += 1;
            }
            self.schedule.push(t.clone());
            let child_sleep =
                if self.opts.dpor { sleep_here.inherit(&t) } else { SleepSet::new() };
            self.go(&child, child_sleep, depth + 1);
            self.schedule.pop();
            self.m.trace.truncate(mark);
            if self.opts.dpor {
                sleep_here.insert(t);
            }
        }
    }

    fn terminal(&mut self, st: &State) {
        self.stats.paths += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.schedule.len());
        let entries = to_entries(&self.m.trace);
        let mut violations = vsgm_spec::judge_trace(&entries, self.cfg.final_view.clone());
        // A quiescent state with unfired scripted events means some
        // external stayed gated forever (e.g. a client blocked with no
        // view ever unblocking it) — a liveness failure the trace
        // checkers cannot see, so the explorer reports it itself.
        let stuck: Vec<usize> =
            (0..st.fired.len()).filter(|&i| !st.fired.get(i).copied().unwrap_or(true)).collect();
        if !stuck.is_empty() {
            violations.push(Violation::at_end(
                "EXPLORE:STUCK",
                format!("quiescent with scripted events {stuck:?} never enabled"),
            ));
        }
        if !violations.is_empty() {
            self.stats.violating_paths += 1;
            if self.counterexample.is_none() {
                self.counterexample =
                    Some(Counterexample { schedule: self.schedule.clone(), violations, trace: entries });
            }
        }
    }
}

/// Exhaustively explores `cfg`, judging every terminal path with the
/// full shared checker suite (all safety specs, plus Property 4.2 when
/// the configuration names a final view).
///
/// # Panics
///
/// Panics if any path exceeds [`ExploreConfig::max_depth`] transitions
/// (the composition must quiesce on every schedule).
pub fn explore(cfg: &ExploreConfig, opts: &ExploreOptions) -> Outcome {
    let mut m = Machine::new(cfg);
    let root = m.initial();
    let mut dfs = Dfs {
        m,
        cfg,
        opts: opts.clone(),
        stats: Stats::default(),
        seen: std::collections::BTreeSet::new(),
        schedule: Vec::new(),
        counterexample: None,
    };
    dfs.seen.insert(state_hash(&root));
    dfs.stats.states = 1;
    dfs.go(&root, SleepSet::new(), 0);
    Outcome { stats: dfs.stats, counterexample: dfs.counterexample }
}

/// Replays a recorded schedule against `cfg` and re-judges the resulting
/// trace: the deterministic reproduction handle for a
/// [`Counterexample`].
///
/// # Panics
///
/// Panics if the schedule fires a transition that is not enabled (i.e.
/// it was not produced by [`explore`] on the same configuration).
pub fn replay(cfg: &ExploreConfig, schedule: &[Transition]) -> (Vec<TraceEntry>, Vec<Violation>) {
    let mut m = Machine::new(cfg);
    let mut st = m.initial();
    for (i, t) in schedule.iter().enumerate() {
        assert!(
            m.enabled(&st).iter().any(|e| e == t),
            "replay step {i}: {t:?} is not enabled"
        );
        m.apply(&mut st, t);
    }
    let entries = to_entries(&m.trace);
    let violations = vsgm_spec::judge_trace(&entries, cfg.final_view.clone());
    (entries, violations)
}
