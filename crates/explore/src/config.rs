//! Explorer configurations: the scripted external events whose
//! interleavings (with endpoint actions and channel deliveries) are
//! enumerated, plus the canonical seed configurations the regression
//! tests pin.

use vsgm_types::{AppMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

/// What a scripted external event does at its process.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtKind {
    /// The application multicasts a message (`send_p`). Gated at
    /// exploration time on the client not being blocked, so the
    /// `CLIENT:SPEC` checker stays meaningful on every path.
    Send(AppMsg),
    /// A `mbrshp.start_change_p(cid, set)` notification.
    StartChange {
        /// Locally unique start-change identifier.
        cid: StartChangeId,
        /// Suggested membership.
        set: ProcSet,
    },
    /// A `mbrshp.view_p(v)` notification.
    View(View),
    /// `crash_p()` (§8): freeze the endpoint and wipe its channels.
    Crash,
    /// `recover_p()` (§8): restart with initial state, same identity.
    Recover,
    /// A transient state-corruption fault (DESIGN.md §15): mutate the
    /// endpoint's protocol state in place. The explorer runs the
    /// tick-cadence `StateAudit` atomically with the injection, so each
    /// path sees either a no-op or a legal §8 crash/recover pair — the
    /// deviation window never leaks into a judged trace.
    Corrupt(vsgm_core::CorruptionKind),
}

/// One scripted external event, with its happens-before prerequisites.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtEvent {
    /// The process the event occurs at.
    pub p: ProcessId,
    /// What happens.
    pub kind: ExtKind,
    /// Indices (into [`ExploreConfig::events`]) that must have fired
    /// first. Used to keep each process's membership notifications in
    /// the order the service would emit them; events without mutual
    /// prerequisites race freely.
    pub after: Vec<usize>,
}

/// A small model configuration: the fixed part (endpoints, deterministic
/// setup) and the explored part (external events raced against every
/// endpoint action and channel delivery).
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Human-readable name (used by the CLI and reports).
    pub name: String,
    /// Number of processes (`p1..pn`).
    pub n: u64,
    /// Endpoint configuration (e.g. §9 leader aggregation on).
    pub endpoint: vsgm_core::Config,
    /// Externals fired in order under a canonical drain *before*
    /// exploration starts — typically the initial view installation.
    /// Their events are part of every judged trace but contribute no
    /// branching.
    pub setup: Vec<ExtEvent>,
    /// Externals fired deterministically after `setup`, each followed by
    /// a macro-step of the *firing endpoint only* — its outgoing
    /// messages are left **in flight** rather than drained. This loads
    /// the channels so exploration can focus on delivery/flush races
    /// (e.g. sync-contribution arrival order at a leader) without also
    /// enumerating every ordering of the externals themselves.
    pub preload: Vec<ExtEvent>,
    /// The explored externals; all interleavings with endpoint actions
    /// and deliveries (respecting [`ExtEvent::after`]) are enumerated.
    pub events: Vec<ExtEvent>,
    /// The view every surviving member stabilizes to; enables the
    /// Property 4.2 liveness checker on every terminal path.
    pub final_view: Option<View>,
    /// Livelock guard: a single path exceeding this many transitions
    /// panics (the composition must quiesce).
    pub max_depth: usize,
}

fn pid(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn set_of(ids: &[u64]) -> ProcSet {
    ids.iter().map(|&i| pid(i)).collect()
}

/// Builds the membership view `members` would install for change `cid`
/// at epoch `epoch` (every member's start-change identifier is `cid`).
pub fn view_of(epoch: u64, cid: u64, members: &[u64]) -> View {
    let set = set_of(members);
    View::new(
        ViewId::new(epoch, 0),
        set.iter().copied(),
        set.iter().map(|m| (*m, StartChangeId::new(cid))),
    )
}

/// Appends a full view change (a `start_change` then the view, at every
/// member) to `events`, chaining each process's notifications after its
/// previous membership event in `chain`. When `serialize` is set, each
/// notification is additionally chained after the previously appended
/// one (a single global order for the service's notifications — the
/// message races stay fully explored, only external/external races are
/// fixed, which keeps larger configurations tractable). Returns the
/// formed view.
fn push_change(
    events: &mut Vec<ExtEvent>,
    chain: &mut std::collections::BTreeMap<ProcessId, usize>,
    epoch: u64,
    cid: u64,
    members: &[u64],
    serialize: bool,
) -> View {
    let set = set_of(members);
    let view = view_of(epoch, cid, members);
    for &m in members {
        let mut after: Vec<usize> = chain.get(&pid(m)).copied().into_iter().collect();
        if serialize && !events.is_empty() {
            after.push(events.len() - 1);
        }
        after.sort_unstable();
        after.dedup();
        events.push(ExtEvent {
            p: pid(m),
            kind: ExtKind::StartChange { cid: StartChangeId::new(cid), set: set.clone() },
            after,
        });
        chain.insert(pid(m), events.len() - 1);
    }
    for &m in members {
        let mut after: Vec<usize> = chain.get(&pid(m)).copied().into_iter().collect();
        if serialize && !events.is_empty() {
            after.push(events.len() - 1);
        }
        after.sort_unstable();
        after.dedup();
        events.push(ExtEvent { p: pid(m), kind: ExtKind::View(view.clone()), after });
        chain.insert(pid(m), events.len() - 1);
    }
    view
}

/// The setup script installing the initial view `members` (change `cid`
/// at epoch `epoch`) at every member.
fn initial_view_setup(epoch: u64, cid: u64, members: &[u64]) -> (Vec<ExtEvent>, View) {
    let mut setup = Vec::new();
    let mut chain = std::collections::BTreeMap::new();
    let view = push_change(&mut setup, &mut chain, epoch, cid, members, false);
    (setup, view)
}

impl ExploreConfig {
    /// The canonical 3-endpoint / one-view-change configuration of the
    /// acceptance criteria: from an installed view `{1,2,3}`, the group
    /// shrinks to `{1,2}`. Every interleaving of the survivors'
    /// membership notifications, the Fig. 10 synchronization round, and
    /// all channel deliveries is enumerated (the unpruned enumeration is
    /// also tractable, so the regression tests pin both counts).
    pub fn canonical() -> ExploreConfig {
        let (setup, _) = initial_view_setup(1, 1, &[1, 2, 3]);
        let mut events = Vec::new();
        let mut chain = std::collections::BTreeMap::new();
        let final_view = push_change(&mut events, &mut chain, 2, 2, &[1, 2], false);
        ExploreConfig {
            name: "canonical".to_string(),
            n: 3,
            endpoint: vsgm_core::Config::default(),
            setup,
            preload: Vec::new(),
            events,
            final_view: Some(final_view),
            max_depth: 2_000,
        }
    }

    /// §9 two-tier leader aggregation through a view change: three
    /// endpoints with `aggregation: true` and a same-membership epoch
    /// bump, so all three members synchronize and the leader (smallest
    /// id) aggregates the two others' sync messages. The start-change
    /// notifications are preloaded — each member has emitted its sync
    /// contribution but nothing is delivered — and exploration then
    /// enumerates every interleaving of contribution arrival at the
    /// leader, aggregate flush, and view delivery, which is exactly the
    /// nondeterminism `core/src/aggregation.rs` must tolerate.
    pub fn aggregation() -> ExploreConfig {
        let (setup, _) = initial_view_setup(1, 1, &[1, 2, 3]);
        let members = [1u64, 2, 3];
        let set = set_of(&members);
        let final_view = view_of(2, 2, &members);
        let preload: Vec<ExtEvent> = members
            .iter()
            .map(|&m| ExtEvent {
                p: pid(m),
                kind: ExtKind::StartChange { cid: StartChangeId::new(2), set: set.clone() },
                after: vec![],
            })
            .collect();
        let events: Vec<ExtEvent> = members
            .iter()
            .map(|&m| ExtEvent { p: pid(m), kind: ExtKind::View(final_view.clone()), after: vec![] })
            .collect();
        ExploreConfig {
            name: "aggregation".to_string(),
            n: 3,
            endpoint: vsgm_core::Config { aggregation: true, ..vsgm_core::Config::default() },
            setup,
            preload,
            events,
            final_view: Some(final_view),
            max_depth: 2_000,
        }
    }

    /// Crash/recovery (§8): from view `{1,2,3}`, a send races `p3`'s
    /// crash, the survivor change to `{1,2}`, and `p3`'s recovery. The
    /// crash commutes with nothing, so this exercises the explorer's
    /// global-transition handling and the §8 channel wipe.
    pub fn crash_recovery() -> ExploreConfig {
        let (setup, _) = initial_view_setup(1, 1, &[1, 2, 3]);
        let mut events = Vec::new();
        let mut chain = std::collections::BTreeMap::new();
        events.push(ExtEvent { p: pid(3), kind: ExtKind::Crash, after: vec![] });
        chain.insert(pid(3), events.len() - 1);
        let final_view = push_change(&mut events, &mut chain, 2, 2, &[1, 2], false);
        ExploreConfig {
            name: "crash-recovery".to_string(),
            n: 3,
            endpoint: vsgm_core::Config::default(),
            setup,
            preload: Vec::new(),
            events,
            final_view: Some(final_view),
            max_depth: 2_000,
        }
    }

    /// Self-stabilization (DESIGN.md §15): from view `{1,2,3}` with a
    /// multicast from `p3` still in flight, the survivors' change to
    /// `{1,2}` races a membership-scrambling corruption at `p3`. Audits
    /// are armed, so whenever the fault fires the endpoint must detect
    /// and reconcile through §8 — the checkers see a crash/recover pair
    /// at an arbitrary position in the change, the reconciliation's
    /// channel wipe races the delivery of `p3`'s last message, and the
    /// survivors must still install the final view on every path. `p3`
    /// is deliberately *outside* the final view: its reconciliation
    /// resets any installed state, so keeping it out of the liveness
    /// obligation separates "converged to a legal state" from "happened
    /// to rejoin", which the chaos tier covers with its post-fault
    /// reconfigure instead.
    pub fn corruption() -> ExploreConfig {
        let (setup, _) = initial_view_setup(1, 1, &[1, 2, 3]);
        let preload = vec![ExtEvent {
            p: pid(3),
            kind: ExtKind::Send(AppMsg::from("m3")),
            after: vec![],
        }];
        let mut events = Vec::new();
        let mut chain = std::collections::BTreeMap::new();
        events.push(ExtEvent {
            p: pid(3),
            kind: ExtKind::Corrupt(vsgm_core::CorruptionKind::ScrambleMembership),
            after: vec![],
        });
        chain.insert(pid(3), events.len() - 1);
        let final_view = push_change(&mut events, &mut chain, 2, 2, &[1, 2], false);
        ExploreConfig {
            name: "corruption".to_string(),
            n: 3,
            endpoint: vsgm_core::Config { audit: true, ..vsgm_core::Config::default() },
            setup,
            preload,
            events,
            final_view: Some(final_view),
            max_depth: 2_000,
        }
    }

    /// All seed configurations, in the order the smoke stage runs them.
    pub fn seeds() -> Vec<ExploreConfig> {
        vec![
            ExploreConfig::canonical(),
            ExploreConfig::aggregation(),
            ExploreConfig::crash_recovery(),
            ExploreConfig::corruption(),
        ]
    }
}
