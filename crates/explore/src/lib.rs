//! **vsgm-explore** — bounded exhaustive model checking of the composed
//! protocol (DESIGN.md §14).
//!
//! The chaos searcher (`vsgm-chaos`) samples schedules randomly; rare
//! interleavings around the synchronization cut (Fig. 10) can hide
//! violations forever. This crate instead enumerates **every**
//! interleaving of a small configuration — 3–4 end-points, one or two
//! view changes, optional crash/recovery — over the same `vsgm-core`
//! endpoints and idealized per-channel FIFO network used by the
//! fine-grained schedule-exploration tests, and judges every terminal
//! path with the full shared spec suite ([`vsgm_spec::judge_trace`]):
//! all seven safety automata plus Property 4.2 conditional liveness.
//!
//! Exhaustive enumeration is made tractable by DPOR-style partial-order
//! reduction: sleep sets ([`vsgm_ioa::SleepSet`]) over a conservative
//! per-endpoint dependence relation prune interleavings that only swap
//! commuting transitions. Canonical path and state counts for the seed
//! configurations are pinned as regression tests, so both a pruning bug
//! and a protocol change that alters the reachable state space fail
//! loudly.
//!
//! * [`config`] — scripted external events and the seed configurations.
//! * [`machine`] — the composed state, schedulable transitions, and the
//!   dependence relation.
//! * [`run`] — the DFS explorer, statistics, counterexamples, replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod machine;
pub mod run;

pub use config::{ExploreConfig, ExtEvent, ExtKind};
pub use machine::{Machine, State, Transition};
pub use run::{explore, replay, Counterexample, ExploreOptions, Outcome, Stats};
