//! The composed small model: endpoint automata plus idealized per-pair
//! FIFO channels, its schedulable transitions, and the conservative
//! dependence relation DPOR pruning is keyed on.
//!
//! The composition mirrors the fine-grained schedule-exploration tests
//! (and the §8 harness semantics): `vsgm-core` endpoints exchange
//! messages over per-ordered-pair FIFO queues, membership notifications
//! arrive as scripted externals, `block` requests are acknowledged
//! immediately (the Fig. 12 client), and a crash wipes the victim's
//! channels. Unlike the random walker, every nondeterministic choice is
//! reified as a [`Transition`] so the explorer can enumerate them all.

use crate::config::{ExploreConfig, ExtEvent, ExtKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use vsgm_core::{Effect, Endpoint, Input};
use vsgm_ioa::{Automaton, Dependence};
use vsgm_types::{Event, NetMsg, ProcSet, ProcessId};

/// One schedulable transition of the composition.
///
/// Endpoint-local scheduling is **process-atomic**: a [`Transition::Fire`]
/// runs `p`'s enabled actions in canonical order until `p` is locally
/// quiescent (exactly the harness drain). The explorer therefore
/// enumerates all interleavings of *communication* — when each endpoint
/// runs relative to deliveries, membership notifications, and faults —
/// while the unobservable order of one endpoint's own back-to-back
/// actions stays canonical. Same-process action orderings only permute
/// effects within a single macro-step and preserve each outgoing
/// channel's FIFO content, so this collapses a factorial factor without
/// hiding any cross-process race from the checkers.
#[derive(Debug, Clone, PartialEq)]
pub enum Transition {
    /// Endpoint `p` runs its enabled locally controlled actions (in
    /// canonical order) until locally quiescent.
    Fire {
        /// The acting endpoint.
        p: ProcessId,
    },
    /// Pop the head of channel `from → to` and deliver it to `to`.
    Deliver {
        /// Channel source.
        from: ProcessId,
        /// Channel destination (the executing endpoint).
        to: ProcessId,
    },
    /// Fire the scripted external [`ExploreConfig::events`]`[index]`.
    External {
        /// Index into the configuration's event list.
        index: usize,
        /// The process the event executes at (denormalized from the
        /// configuration so the dependence relation needs no lookup).
        p: ProcessId,
        /// Whether this is a crash/recovery/corruption — global
        /// transitions that commute with nothing (they can wipe channels
        /// and re-gate every other transition's enabledness).
        global: bool,
    },
}

impl Transition {
    /// The endpoint whose state this transition reads and writes: the
    /// actor for [`Transition::Fire`] and [`Transition::External`], the
    /// *receiver* for [`Transition::Deliver`].
    pub fn proc(&self) -> ProcessId {
        match self {
            Transition::Fire { p, .. } | Transition::External { p, .. } => *p,
            Transition::Deliver { to, .. } => *to,
        }
    }

    /// Whether the transition touches global state (crash, recovery, or
    /// state corruption — whose reconciliation acts like both).
    pub fn is_global(&self) -> bool {
        matches!(self, Transition::External { global: true, .. })
    }
}

/// The conservative per-endpoint dependence relation (DESIGN.md §14):
/// two transitions are declared dependent iff they execute at the same
/// endpoint, or either is a crash/recovery. Transitions at distinct
/// endpoints only ever *append* to the other's incoming channel tails
/// while the other *pops* its own channel heads — FIFO append and pop
/// commute whenever the pop is enabled (the queue is nonempty), and
/// neither can disable the other, so the independence contract of
/// [`Dependence`] holds.
impl Dependence for Transition {
    fn dependent(&self, other: &Self) -> bool {
        self.is_global() || other.is_global() || self.proc() == other.proc()
    }
}

/// A full composition state: everything a transition can read or write.
/// Cloned at every DFS branch point (endpoints are plain-data automata,
/// so a clone is an exact snapshot).
#[derive(Debug, Clone)]
pub struct State {
    /// The endpoint automata.
    pub eps: BTreeMap<ProcessId, Endpoint>,
    /// Per ordered pair, the in-flight FIFO channel.
    pub channels: BTreeMap<(ProcessId, ProcessId), VecDeque<NetMsg>>,
    /// Which scripted externals have fired.
    pub fired: Vec<bool>,
    /// Currently crashed processes (§8).
    pub crashed: BTreeSet<ProcessId>,
    /// Processes whose client acknowledged a `block` and has not yet
    /// seen the view (sends are gated off — Fig. 12).
    pub blocked: BTreeSet<ProcessId>,
}

/// Drives a configuration's composition: owns the (path-local) trace and
/// knows how to enumerate and apply transitions against a [`State`].
pub struct Machine<'a> {
    cfg: &'a ExploreConfig,
    /// The events of the current path, in order. The explorer truncates
    /// this on backtrack, so it always spells the root-to-here schedule.
    pub trace: Vec<Event>,
}

impl<'a> Machine<'a> {
    /// Creates a machine for `cfg` with an empty trace.
    pub fn new(cfg: &'a ExploreConfig) -> Self {
        Machine { cfg, trace: Vec::new() }
    }

    /// Builds the initial state: fresh endpoints, then the setup script
    /// fired in order under a canonical (deterministic, exhaustive)
    /// drain, then the preload script fired in order with only each
    /// firing endpoint macro-stepped (emitted messages stay in flight).
    /// The resulting state is the DFS root; these events form the common
    /// prefix of every judged trace.
    pub fn initial(&mut self) -> State {
        let mut st = State {
            eps: (1..=self.cfg.n)
                .map(|i| {
                    let p = ProcessId::new(i);
                    (p, Endpoint::new(p, self.cfg.endpoint.clone()))
                })
                .collect(),
            channels: BTreeMap::new(),
            fired: vec![false; self.cfg.events.len()],
            crashed: BTreeSet::new(),
            blocked: BTreeSet::new(),
        };
        let setup: Vec<ExtEvent> = self.cfg.setup.clone();
        for ev in &setup {
            self.fire_external(&mut st, ev);
            self.drain(&mut st);
        }
        let preload: Vec<ExtEvent> = self.cfg.preload.clone();
        for ev in &preload {
            self.fire_external(&mut st, ev);
            self.apply(&mut st, &Transition::Fire { p: ev.p });
        }
        st
    }

    /// Applies internal transitions (fires and deliveries, never
    /// scripted externals) in canonical order until none is enabled.
    fn drain(&mut self, st: &mut State) {
        for _ in 0..self.cfg.max_depth {
            let next = self.enabled_internal(st).into_iter().next();
            match next {
                Some(t) => self.apply(st, &t),
                None => return,
            }
        }
        panic!("{}: setup did not quiesce within {} steps", self.cfg.name, self.cfg.max_depth);
    }

    fn enabled_internal(&self, st: &State) -> Vec<Transition> {
        let mut out = Vec::new();
        for (p, ep) in &st.eps {
            if !st.crashed.contains(p) && !ep.enabled_actions().is_empty() {
                out.push(Transition::Fire { p: *p });
            }
        }
        for ((from, to), chan) in &st.channels {
            if !chan.is_empty() {
                out.push(Transition::Deliver { from: *from, to: *to });
            }
        }
        out
    }

    /// Every transition enabled in `st`, in canonical order (endpoint
    /// fires, then channel deliveries, then ready externals).
    pub fn enabled(&self, st: &State) -> Vec<Transition> {
        let mut out = self.enabled_internal(st);
        for (i, ev) in self.cfg.events.iter().enumerate() {
            if st.fired.get(i).copied().unwrap_or(true) {
                continue;
            }
            if !ev.after.iter().all(|&j| st.fired.get(j).copied().unwrap_or(false)) {
                continue;
            }
            let ready = match &ev.kind {
                // Fig. 12: a blocked client does not send.
                ExtKind::Send(_) => !st.blocked.contains(&ev.p),
                ExtKind::Crash => !st.crashed.contains(&ev.p),
                ExtKind::Recover => st.crashed.contains(&ev.p),
                // A transient fault strikes live state only; a crashed
                // endpoint has nothing to corrupt (§8 wipes it anyway).
                ExtKind::Corrupt(_) => !st.crashed.contains(&ev.p),
                ExtKind::StartChange { .. } | ExtKind::View(_) => true,
            };
            if ready {
                let global = matches!(
                    ev.kind,
                    ExtKind::Crash | ExtKind::Recover | ExtKind::Corrupt(_)
                );
                out.push(Transition::External { index: i, p: ev.p, global });
            }
        }
        out
    }

    /// Applies `t` (which must be enabled in `st`), mutating the state
    /// and appending the resulting events to the trace.
    pub fn apply(&mut self, st: &mut State, t: &Transition) {
        match t {
            Transition::Fire { p } => {
                // Macro-step: drain p's enabled actions in canonical
                // order until locally quiescent.
                for _ in 0..self.cfg.max_depth {
                    let ep = st.eps.get_mut(p).expect("known proc");
                    let Some(action) = ep.enabled_actions().into_iter().next() else {
                        return;
                    };
                    let effects = ep.fire(&action);
                    self.route(st, *p, effects);
                }
                panic!("{}: endpoint {p} never went locally quiescent", self.cfg.name);
            }
            Transition::Deliver { from, to } => {
                let msg = st
                    .channels
                    .get_mut(&(*from, *to))
                    .and_then(VecDeque::pop_front)
                    .expect("delivery was enabled");
                self.trace.push(Event::NetDeliver { p: *from, q: *to, msg: msg.clone() });
                let effects =
                    st.eps.get_mut(to).expect("known proc").handle(Input::Net { from: *from, msg });
                self.route(st, *to, effects);
            }
            Transition::External { index, .. } => {
                let ev = self.cfg.events.get(*index).expect("known event").clone();
                self.fire_external(st, &ev);
                if let Some(f) = st.fired.get_mut(*index) {
                    *f = true;
                }
            }
        }
    }

    /// The peers currently considered alive and connected (full
    /// connectivity minus crashed processes) — recorded as
    /// `CO_RFIFO.live` alongside each membership notification, exactly
    /// as the simulation harness does, to scope the reliable-FIFO
    /// obligations across crashes.
    fn live_set(&self, st: &State) -> ProcSet {
        st.eps.keys().filter(|p| !st.crashed.contains(p)).copied().collect()
    }

    fn fire_external(&mut self, st: &mut State, ev: &ExtEvent) {
        let p = ev.p;
        match &ev.kind {
            ExtKind::Send(msg) => {
                if st.crashed.contains(&p) {
                    return; // a crashed client sends nothing
                }
                self.trace.push(Event::Send { p, msg: msg.clone() });
                let effects =
                    st.eps.get_mut(&p).expect("known proc").handle(Input::AppSend(msg.clone()));
                self.route(st, p, effects);
            }
            ExtKind::StartChange { cid, set } => {
                if st.crashed.contains(&p) {
                    return; // the service skips crashed members
                }
                self.trace.push(Event::MbrshpStartChange { p, cid: *cid, set: set.clone() });
                self.trace.push(Event::Live { p, set: self.live_set(st) });
                let effects = st
                    .eps
                    .get_mut(&p)
                    .expect("known proc")
                    .handle(Input::StartChange { cid: *cid, set: set.clone() });
                self.route(st, p, effects);
            }
            ExtKind::View(view) => {
                if st.crashed.contains(&p) {
                    return;
                }
                self.trace.push(Event::MbrshpView { p, view: view.clone() });
                self.trace.push(Event::Live { p, set: self.live_set(st) });
                let effects =
                    st.eps.get_mut(&p).expect("known proc").handle(Input::MbrshpView(view.clone()));
                self.route(st, p, effects);
            }
            ExtKind::Crash => {
                self.trace.push(Event::Crash { p });
                st.eps.get_mut(&p).expect("known proc").handle(Input::Crash);
                st.crashed.insert(p);
                st.blocked.remove(&p); // the client restarts unblocked
                // §8: the crash wipes the victim's channels, both ways.
                for ((from, to), chan) in st.channels.iter_mut() {
                    if *from == p || *to == p {
                        chan.clear();
                    }
                }
            }
            ExtKind::Recover => {
                self.trace.push(Event::Recover { p });
                st.crashed.remove(&p);
                let effects = st.eps.get_mut(&p).expect("known proc").handle(Input::Recover);
                self.route(st, p, effects);
            }
            ExtKind::Corrupt(kind) => {
                if st.crashed.contains(&p) {
                    return; // nothing live to corrupt
                }
                // Macro-step: inject the mutation and immediately run the
                // tick-cadence StateAudit (the salt is fixed so the
                // mutation is deterministic across replays). A detected
                // corruption reconciles through the §8 path, which the
                // checkers observe as a crash/recover pair; the deviation
                // window is a single atomic transition, so no corrupted
                // state ever acts on a judged trace.
                let ep = st.eps.get_mut(&p).expect("known proc");
                ep.corrupt(*kind, 7);
                let effects = ep.handle(Input::Tick(0));
                if effects.iter().any(|e| matches!(e, Effect::Reconciled)) {
                    self.trace.push(Event::Crash { p });
                    // §8: reconciliation wipes the channels, both ways.
                    for ((from, to), chan) in st.channels.iter_mut() {
                        if *from == p || *to == p {
                            chan.clear();
                        }
                    }
                    st.blocked.remove(&p);
                    self.trace.push(Event::Recover { p });
                } else {
                    // The mutation landed on state the audit accepts
                    // (a no-op under this salt): route normally.
                    self.route(st, p, effects);
                }
            }
        }
    }

    fn route(&mut self, st: &mut State, from: ProcessId, effects: Vec<Effect>) {
        for eff in effects {
            match eff {
                Effect::NetSend { to, msg } => {
                    self.trace.push(Event::NetSend { p: from, set: to.clone(), msg: msg.clone() });
                    for dest in to {
                        if dest != from && !st.crashed.contains(&dest) {
                            st.channels.entry((from, dest)).or_default().push_back(msg.clone());
                        }
                    }
                }
                Effect::SetReliable(set) => self.trace.push(Event::Reliable { p: from, set }),
                Effect::DeliverApp { from: sender, msg } => {
                    self.trace.push(Event::Deliver { p: from, q: sender, msg });
                }
                Effect::InstallView { view, transitional } => {
                    self.trace.push(Event::GcsView { p: from, view, transitional });
                    st.blocked.remove(&from);
                }
                // Reconciliation is consumed by the `Corrupt` macro-step
                // above (audits only run there — endpoints never tick on
                // other explored transitions), so nothing reaches here.
                Effect::Reconciled => {}
                Effect::Block => {
                    // The Fig. 12 client acknowledges immediately; the
                    // explorer then gates scripted sends until the view.
                    self.trace.push(Event::Block { p: from });
                    self.trace.push(Event::BlockOk { p: from });
                    st.blocked.insert(from);
                    let more = st.eps.get_mut(&from).expect("known proc").handle(Input::BlockOk);
                    self.route(st, from, more);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> ProcessId {
        ProcessId::new(i)
    }

    fn ext(i: usize, proc_: u64, global: bool) -> Transition {
        Transition::External { index: i, p: p(proc_), global }
    }

    #[test]
    fn dependence_is_symmetric_and_per_endpoint() {
        let d12 = Transition::Deliver { from: p(1), to: p(2) };
        let d32 = Transition::Deliver { from: p(3), to: p(2) };
        let d21 = Transition::Deliver { from: p(2), to: p(1) };
        // Same receiving endpoint: dependent (they race into p2).
        assert!(d12.dependent(&d32));
        assert!(d32.dependent(&d12));
        // Different receivers commute, even on the "crossed" pair where
        // each appends to the channel the other pops.
        assert!(!d12.dependent(&d21));
        assert!(!d21.dependent(&d12));
    }

    #[test]
    fn externals_follow_the_same_rule() {
        let s1 = ext(0, 1, false);
        let s2 = ext(1, 2, false);
        let d_to_1 = Transition::Deliver { from: p(2), to: p(1) };
        assert!(!s1.dependent(&s2));
        assert!(s1.dependent(&d_to_1));
    }

    #[test]
    fn crash_and_recovery_commute_with_nothing() {
        let crash = ext(2, 3, true);
        let far_away = Transition::Deliver { from: p(1), to: p(2) };
        assert!(crash.dependent(&far_away));
        assert!(far_away.dependent(&crash));
        assert!(crash.dependent(&crash.clone()));
    }

    #[test]
    fn initial_state_of_the_canonical_config_is_quiescent() {
        let cfg = crate::config::ExploreConfig::canonical();
        let mut m = Machine::new(&cfg);
        let st = m.initial();
        // Setup drained: no fires or deliveries left, only the scripted
        // externals are enabled.
        assert!(m.enabled_internal(&st).is_empty());
        let en = m.enabled(&st);
        assert!(en.iter().all(|t| matches!(t, Transition::External { .. })), "{en:?}");
        // The survivors' two start_changes are ready; the views wait on
        // their start_changes.
        assert_eq!(en.len(), 2, "{en:?}");
        // The setup trace installed the initial view everywhere.
        let installs =
            m.trace.iter().filter(|e| matches!(e, Event::GcsView { .. })).count();
        assert_eq!(installs, 3);
    }
}
