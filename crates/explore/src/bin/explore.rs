//! `explore` — run the bounded exhaustive interleaving explorer over the
//! seed configurations (or one named configuration) and report path /
//! state / pruning statistics. Exits nonzero with a replayable
//! counterexample report if any path violates the spec suite.
//!
//! Usage: `explore [--config NAME] [--no-dpor] [--format json]`

use vsgm_explore::{explore, ExploreConfig, ExploreOptions};

fn usage() -> ! {
    eprintln!(
        "usage: explore [--config canonical|aggregation|crash-recovery|corruption] [--no-dpor] [--format json]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config: Option<String> = None;
    let mut dpor = true;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--config" => config = Some(args.next().unwrap_or_else(|| usage())),
            "--no-dpor" => dpor = false,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let configs: Vec<ExploreConfig> = match &config {
        None => ExploreConfig::seeds(),
        Some(name) => {
            let found = ExploreConfig::seeds().into_iter().find(|c| c.name == *name);
            match found {
                Some(c) => vec![c],
                None => usage(),
            }
        }
    };
    let opts = ExploreOptions { dpor };
    let mut failed = false;
    let mut lines = Vec::new();
    for cfg in &configs {
        let outcome = explore(cfg, &opts);
        let s = &outcome.stats;
        if json {
            lines.push(format!(
                "{{\"config\":\"{}\",\"dpor\":{},\"paths\":{},\"pruned\":{},\"states\":{},\"max_depth\":{},\"violating_paths\":{}}}",
                cfg.name, dpor, s.paths, s.pruned, s.states, s.max_depth, s.violating_paths
            ));
        } else {
            lines.push(format!(
                "{:<16} paths={:<8} pruned={:<8} states={:<8} max_depth={:<4} violating={}",
                cfg.name, s.paths, s.pruned, s.states, s.max_depth, s.violating_paths
            ));
        }
        if let Some(cex) = &outcome.counterexample {
            failed = true;
            eprintln!("counterexample in config '{}':\n{}", cfg.name, cex.render());
        }
    }
    for l in &lines {
        println!("{l}");
    }
    if failed {
        std::process::exit(1);
    }
}
