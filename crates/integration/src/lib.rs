//! Host package for the repository-level integration tests in `tests/`.
