#!/usr/bin/env bash
# The full local CI gate: release build, tests, and lint-clean clippy.
# Pass --offline (the default when CARGO_NET_OFFLINE=true) in sandboxes
# with no crates.io access; the vendored stubs in vendor/ satisfy every
# external dependency.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(${CARGO_FLAGS:-})
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    CARGO_FLAGS+=(--offline)
fi

echo "==> cargo build --release"
cargo build --release "${CARGO_FLAGS[@]}"

echo "==> cargo test -q"
cargo test -q "${CARGO_FLAGS[@]}"

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace "${CARGO_FLAGS[@]}" -- -D warnings

# Protocol analyzer: deny-by-default. Exits nonzero on any unwaived
# finding (determinism, panic-freedom, IOA discipline, spec coverage,
# lock discipline, clock discipline, waiver hygiene).
echo "==> vsgm-analyze --format json"
cargo run -q -p vsgm-analyze "${CARGO_FLAGS[@]}" -- --format json

# Explore smoke: exhaustively enumerate every interleaving of the four
# seed configurations (DPOR-pruned) and judge each path with the full
# checker suite. Exit 1 carries a replayable counterexample schedule.
# The same counts are pinned as regressions in crates/explore/tests.
echo "==> vsgm-explore seeds"
for cfg in canonical aggregation crash-recovery corruption; do
    cargo run -q --release -p vsgm-explore --bin explore "${CARGO_FLAGS[@]}" -- \
        --config "$cfg" --format json
done

# TSan smoke: the writer-thread / batching / transport paths of vsgm-net
# under ThreadSanitizer. A *sound* run needs std itself instrumented
# (-Zbuild-std), i.e. a nightly toolchain with the rust-src component —
# without it TSan sees no happens-before edges inside std's locks and
# reports false races, so the stage skips rather than cry wolf. Where it
# does run, any report is a real data race and fails the gate; elsewhere
# the lexical R1 lint above still covers the lock-discipline basics.
echo "==> tsan smoke (net writer/batching)"
host_triple="$(rustc -vV | sed -n 's/^host: //p')"
if rustup run nightly cargo --version >/dev/null 2>&1 \
    && [ -d "$(rustup run nightly rustc --print sysroot)/lib/rustlib/src/rust/library" ]; then
    RUSTFLAGS="-Zsanitizer=thread" \
        rustup run nightly cargo test -q "${CARGO_FLAGS[@]}" \
        -Zbuild-std --target "$host_triple" --target-dir target/tsan \
        -p vsgm-net writer::
    echo "    tsan: clean"
else
    echo "    tsan: nightly with rust-src unavailable, skipped"
fi

# Net-bench smoke: a short loopback run of the codec/flush comparison
# (JSON vs binary × per-send vs coalesced) plus the connection-scaling
# arms (16/256/4096 inbound connections into one fixed loop pool).
# Emits BENCH_net.json at the repo root; an empty or missing file fails
# the gate.
echo "==> net-bench smoke (BENCH_net.json)"
VSGM_NET_BENCH_MSGS="${VSGM_NET_BENCH_MSGS:-2000}" \
VSGM_BENCH_BUDGET_MS="${VSGM_BENCH_BUDGET_MS:-50}" \
VSGM_BENCH_JSON="$PWD/BENCH_net.json" \
    cargo bench -q -p vsgm-bench --bench net_throughput "${CARGO_FLAGS[@]}" >/dev/null
test -s BENCH_net.json

# Net-scaling smoke: the 16-connection arm alone, re-run against the
# pinned pre-rewrite baseline (592,845 frames/s, the old transport's
# binary-coalesced rate). The bench itself asserts the frames/s floor
# and that the receiver's loop threads stayed within the configured
# pool, and exits nonzero on either regression.
echo "==> net-scaling smoke (16 conns >= pinned baseline)"
VSGM_NET_SCALING_ONLY=1 \
VSGM_NET_BENCH_CONNS=16 \
VSGM_NET_SCALE_FLOOR="${VSGM_NET_SCALE_FLOOR:-592845}" \
    cargo bench -q -p vsgm-bench --bench net_throughput "${CARGO_FLAGS[@]}"

# GCS-bench smoke: the endpoint batching comparison (per-message vs
# small/large batches) over the full group-multicast path on TCP
# loopback. Emits BENCH_gcs.json at the repo root; an empty or missing
# file fails the gate.
echo "==> gcs-bench smoke (BENCH_gcs.json)"
VSGM_GCS_BENCH_MSGS="${VSGM_GCS_BENCH_MSGS:-2000}" \
VSGM_BENCH_BUDGET_MS="${VSGM_BENCH_BUDGET_MS:-50}" \
VSGM_BENCH_JSON="$PWD/BENCH_gcs.json" \
    cargo bench -q -p vsgm-bench --bench gcs_throughput "${CARGO_FLAGS[@]}" >/dev/null
test -s BENCH_gcs.json

# Batching differential suite, run by name so a batching regression
# fails with a readable stage (the suite is also part of `cargo test`).
echo "==> batching differential suite"
cargo test -q -p vsgm-integration --test batching_differential "${CARGO_FLAGS[@]}" >/dev/null

# Multi-group conformance: hosted groups must be byte-identical to
# isolated reruns (≥50 randomized schedules plus the pinned same-shard
# interleaving), and faults injected into one group must leave its
# shard-mates untouched. Both suites are also part of `cargo test`; run
# by name so a multiplexing regression fails with a readable stage.
echo "==> multi-group differential + isolation suites"
cargo test -q -p vsgm-integration --test multigroup_differential "${CARGO_FLAGS[@]}" >/dev/null
cargo test -q -p vsgm-integration --test multigroup_chaos "${CARGO_FLAGS[@]}" >/dev/null

# Group-scaling smoke (EXPERIMENTS.md E15): a reduced groups×clients
# sweep through the real vsgm-server daemon on loopback. The bench
# itself judges the run — every expected delivery observed, every
# group's spec checkers green, zero unroutable frames — and asserts the
# deliveries/s floor. Emits BENCH_groups.json at the repo root; an
# empty or missing file fails the gate. (The committed headline run is
# 1000 groups × 10 clients with the knobs at their defaults.)
echo "==> group-scaling smoke (BENCH_groups.json)"
VSGM_GROUPS="${VSGM_GROUPS:-64}" \
VSGM_GROUP_CLIENTS="${VSGM_GROUP_CLIENTS:-4}" \
VSGM_GROUP_SENDS="${VSGM_GROUP_SENDS:-64}" \
VSGM_GROUPS_FLOOR="${VSGM_GROUPS_FLOOR:-100}" \
VSGM_BENCH_JSON="$PWD/BENCH_groups.json" \
    cargo bench -q -p vsgm-bench --bench group_scaling "${CARGO_FLAGS[@]}" >/dev/null
test -s BENCH_groups.json

# Chaos smoke: randomized fault-injection search over a fixed seed batch.
# Every generated scenario must pass the full checker suite (exit 0); the
# run is deterministic, so a failure here is a reproducible protocol bug —
# rerun with `--seed <n> --minimize` to shrink it.
echo "==> chaos --seeds 100"
cargo run -q --release -p vsgm-chaos --bin chaos "${CARGO_FLAGS[@]}" -- --seeds 100 --format json >/dev/null

# Stabilization smoke (DESIGN.md §15, EXPERIMENTS.md E11): the same seed
# batch with state-corruption faults mixed in — every run must converge
# back to a legal state (audit-detected §8 reconciliation, clean judged
# suffix) — then the per-corruption-class convergence sweep, which emits
# BENCH_stabilize.json at the repo root. An empty or missing file, or any
# non-converging seed, fails the gate; rerun a failure with
# `--seed <n> --corrupt --minimize` to shrink it.
echo "==> stabilization smoke (BENCH_stabilize.json)"
cargo run -q --release -p vsgm-chaos --bin chaos "${CARGO_FLAGS[@]}" -- \
    --seeds 100 --corrupt --format json >/dev/null
cargo run -q --release -p vsgm-chaos --bin chaos "${CARGO_FLAGS[@]}" -- \
    --seeds 25 --stabilize-json "$PWD/BENCH_stabilize.json" >/dev/null
test -s BENCH_stabilize.json

echo "==> all checks passed"
