//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — implemented as a simple
//! wall-clock timer with mean-per-iteration reporting. No statistics,
//! plots, or comparison with previous runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a name and a displayable parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; measures the routine under test.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly inside a small time budget and record the
    /// mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes lazy initialization in the routine).
        black_box(routine());
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget || iters >= 100_000 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// One group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a routine under a string id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let (total, iters) = self.criterion.run_one(&mut f);
        report(&label, total, iters, self.throughput);
        self
    }

    /// Benchmark a routine that takes an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let (total, iters) = self.criterion.run_one(&mut |b: &mut Bencher| f(b, input));
        report(&label, total, iters, self.throughput);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Benchmark driver (stub).
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: benches here regenerate whole experiment tables.
        let ms = std::env::var("VSGM_BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200u64);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmark a single routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (total, iters) = self.run_one(&mut f);
        report(name, total, iters, None);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, f: &mut F) -> (Duration, u64) {
        let mut bencher = Bencher { total: Duration::ZERO, iters: 0, budget: self.budget };
        f(&mut bencher);
        (bencher.total, bencher.iters.max(1))
    }
}

fn report(label: &str, total: Duration, iters: u64, throughput: Option<Throughput>) {
    let per_iter = total.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  thrpt: {:.0} elem/s", n as f64 * 1e9 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  thrpt: {:.0} B/s", n as f64 * 1e9 / per_iter)
        }
        _ => String::new(),
    };
    println!("{label:<60} time: {} /iter ({iters} iterations){rate}", fmt_ns(per_iter));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        std::env::set_var("VSGM_BENCH_BUDGET_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
