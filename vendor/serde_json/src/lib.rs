//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text against the stub `serde` crate's [`Value`]
//! data model. Covers the API surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`], [`from_slice`], and the
//! [`Error`] type. The parser is a strict recursive-descent JSON reader:
//! it rejects trailing garbage, malformed literals, and bad escapes.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON printing or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parse a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Keep floats recognizable as floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x \"y\" \n".into())),
            ("d".into(), Value::I64(-7)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(from_str::<Value>("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(from_str::<Value>("-5").unwrap(), Value::I64(-5));
        assert_eq!(from_str::<Value>("1.5").unwrap(), Value::F64(1.5));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<Value>("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }
}
