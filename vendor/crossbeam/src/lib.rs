//! Offline stand-in for `crossbeam`, covering the `channel` module surface
//! this workspace uses (`unbounded`, `Sender`, `Receiver` with `send`,
//! `recv`, `recv_timeout`, `try_recv`), implemented over `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    ///
    /// Unlike `std::sync::mpsc`, crossbeam receivers are `Sync` and `Clone`
    /// (multi-consumer); the stub provides that by serializing consumers
    /// through a mutex. Each message still reaches exactly one consumer.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::Arc<std::sync::Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(std::sync::Arc::new(std::sync::Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        /// Enqueue a message; errors if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout)
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }

        /// Drain all currently queued messages into a vector.
        pub fn try_iter(&self) -> std::vec::IntoIter<T> {
            let guard = self.inner();
            let mut drained = Vec::new();
            while let Ok(v) = guard.try_recv() {
                drained.push(v);
            }
            drained.into_iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            ));
        }
    }
}
