//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! stub `serde` crate's value model (`Serialize::to_value` /
//! `Deserialize::from_value`). The input grammar is deliberately restricted
//! to what this workspace actually derives on: **non-generic** structs and
//! enums, with the container/field attributes `#[serde(transparent)]`,
//! `#[serde(rename_all = "snake_case")]`, and `#[serde(default)]`.
//! Anything outside that grammar panics with a clear compile-time message
//! rather than silently mis-serializing.
//!
//! The parser walks the raw `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline); generated impls are assembled as strings
//! and re-parsed, using fully qualified `::serde::` / `::std::` paths.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    snake_case: bool,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct SerdeAttrs {
    transparent: bool,
    snake_case: bool,
    default: bool,
}

/// Consume leading attributes (`#[...]`), returning any serde flags seen.
fn take_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> SerdeAttrs {
    let mut out = SerdeAttrs { transparent: false, snake_case: false, default: false };
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                let group = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    other => panic!("serde stub derive: malformed attribute near {other:?}"),
                };
                let mut inner = group.stream().into_iter();
                let is_serde = matches!(
                    inner.next(),
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                );
                if !is_serde {
                    continue; // doc comment or unrelated attribute
                }
                let args = match inner.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    other => panic!("serde stub derive: malformed #[serde] attribute near {other:?}"),
                };
                let words: Vec<String> =
                    args.stream().into_iter().map(|t| t.to_string()).collect();
                let mut i = 0;
                while i < words.len() {
                    match words[i].as_str() {
                        "transparent" => out.transparent = true,
                        "default" => out.default = true,
                        "rename_all" => {
                            let val = words.get(i + 2).map(String::as_str);
                            if val != Some("\"snake_case\"") {
                                panic!(
                                    "serde stub derive: only rename_all = \"snake_case\" is supported, got {val:?}"
                                );
                            }
                            out.snake_case = true;
                            i += 2;
                        }
                        "," => {}
                        other => panic!("serde stub derive: unsupported serde attribute `{other}`"),
                    }
                    i += 1;
                }
            }
            _ => return out,
        }
    }
}

/// Skip a visibility qualifier if present (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(
            toks.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            toks.next();
        }
    }
}

/// Skip a type expression: everything up to a top-level `,` (angle-bracket
/// aware, since `<...>` is not a token group). Consumes the comma if present.
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    while let Some(t) = toks.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                toks.next();
                return;
            }
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut toks);
        skip_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut toks);
        fields.push(Field { name, default: attrs.default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in stream {
        match t {
            TokenTree::Punct(ref p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                continue;
            }
            _ => {}
        }
        any = true;
    }
    if any {
        commas + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                toks.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Consume a trailing comma, if any.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let attrs = take_attrs(&mut toks);
    skip_vis(&mut toks);
    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            other => panic!("serde stub derive: malformed struct `{name}` near {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: malformed enum `{name}` near {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };
    Item { name, transparent: attrs.transparent, snake_case: attrs.snake_case, kind }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl Item {
    fn field_key(&self, field: &str) -> String {
        if self.snake_case && matches!(self.kind, Kind::Struct(_)) {
            snake_case(field)
        } else {
            field.to_string()
        }
    }

    fn variant_key(&self, variant: &str) -> String {
        if self.snake_case {
            snake_case(variant)
        } else {
            variant.to_string()
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) if item.transparent => {
            assert_eq!(fields.len(), 1, "transparent struct must have exactly one field");
            format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
        }
        Kind::Struct(Shape::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{}\"), ::serde::Serialize::to_value(&self.{}))",
                        item.field_key(&f.name),
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let key = item.variant_key(&v.name);
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{key}\")),",
                            v = v.name
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{v}(__f0) => ::serde::Value::Object(vec![(::std::string::String::from(\"{key}\"), ::serde::Serialize::to_value(__f0))]),",
                            v = v.name
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{v}({binds}) => ::serde::Value::Object(vec![(::std::string::String::from(\"{key}\"), ::serde::Value::Array(vec![{elems}]))]),",
                                v = v.name,
                                binds = binds.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{}\"), ::serde::Serialize::to_value({}))",
                                        f.name, f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(::std::string::String::from(\"{key}\"), ::serde::Value::Object(vec![{pairs}]))]),",
                                v = v.name,
                                binds = binds.join(", "),
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_ctor(item: &Item, path: &str, fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let key = item.field_key(&f.name);
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::missing(\"{key}\"))"
                )
            };
            format!(
                "{fname}: match ::serde::__find({source}, \"{key}\") {{\n\
                     ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                     ::std::option::Option::None => {missing},\n\
                 }}",
                fname = f.name
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(",\n"))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Kind::Struct(Shape::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = match __v {{ ::serde::Value::Array(a) => a, other => return ::std::result::Result::Err(::serde::Error::expected(\"array\", other)) }};\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"wrong tuple arity\")); }}\n\
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) if item.transparent => {
            format!(
                "::std::result::Result::Ok({name} {{ {fname}: ::serde::Deserialize::from_value(__v)? }})",
                fname = fields[0].name
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            let ctor = gen_named_ctor(item, name, fields, "__pairs");
            format!(
                "let __pairs = match __v {{ ::serde::Value::Object(p) => p.as_slice(), other => return ::std::result::Result::Err(::serde::Error::expected(\"object\", other)) }};\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{v}),",
                        key = item.variant_key(&v.name),
                        v = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let key = item.variant_key(&v.name);
                    match &v.shape {
                        Shape::Unit => format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}),",
                            v = v.name
                        ),
                        Shape::Tuple(1) => format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),",
                            v = v.name
                        ),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{key}\" => {{\n\
                                     let __items = match __inner {{ ::serde::Value::Array(a) => a, other => return ::std::result::Result::Err(::serde::Error::expected(\"array\", other)) }};\n\
                                     if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"wrong variant arity\")); }}\n\
                                     ::std::result::Result::Ok({name}::{v}({elems}))\n\
                                 }}",
                                v = v.name,
                                elems = elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let ctor = gen_named_ctor(
                                item,
                                &format!("{name}::{}", v.name),
                                fields,
                                "__fields",
                            );
                            format!(
                                "\"{key}\" => {{\n\
                                     let __fields = match __inner {{ ::serde::Value::Object(p) => p.as_slice(), other => return ::std::result::Result::Err(::serde::Error::expected(\"object\", other)) }};\n\
                                     ::std::result::Result::Ok({ctor})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     return match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}`\"))),\n\
                     }};\n\
                 }}\n\
                 let __pairs = match __v {{ ::serde::Value::Object(p) => p, other => return ::std::result::Result::Err(::serde::Error::expected(\"string or object\", other)) }};\n\
                 if __pairs.len() != 1 {{ return ::std::result::Result::Err(::serde::Error::msg(\"expected single-key enum object\")); }}\n\
                 let (__k, __inner) = &__pairs[0];\n\
                 match __k.as_str() {{\n\
                     {data}\n\
                     __other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}`\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` via the stub value model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde stub derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` via the stub value model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde stub derive: generated Deserialize impl failed to parse")
}
