//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the same
//! construction real `rand` 0.8 uses for its 64-bit `SmallRng`),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods used by this
//! workspace (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::{choose, shuffle}`][seq::SliceRandom].

#![forbid(unsafe_code)]

/// A source of random `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all 2^k bit patterns (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw a uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods over any [`RngCore`] (the `rand::Rng` trait).
pub trait Rng: RngCore {
    /// Uniform value over a type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must lie in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations over slices (the `rand::seq::SliceRandom` trait).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Pick a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!([1, 2, 3].choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
