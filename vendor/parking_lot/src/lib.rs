//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! poison-free `lock()`/`read()`/`write()` API, backed by `std::sync`.

#![forbid(unsafe_code)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new unlocked rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.into_inner(), 4);
        let rw = RwLock::new(1);
        assert_eq!(*rw.read(), 1);
        *rw.write() = 2;
        assert_eq!(*rw.read(), 2);
    }
}
