//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`Strategy`] trait with `prop_map`/`boxed`, range and tuple
//! strategies, [`any`], [`Just`], `prop::collection::{vec, btree_map,
//! btree_set}`, weighted [`prop_oneof!`], [`ProptestConfig`], the
//! [`proptest!`] test-harness macro, and the `prop_assert*` macros.
//!
//! Differences from real proptest: inputs are generated from a
//! deterministic per-test seed (derived from the test path and case
//! index), and failing cases are reported without shrinking. Failure
//! output includes the case number and the generated inputs, which is
//! enough to reproduce — generation is fully deterministic.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving input generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Build the generator for one test case: seeded by the test's path
    /// and the case index, so every run of the suite sees the same inputs.
    pub fn deterministic(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the test path, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ ((case as u64) << 32) ^ 0x5bf0_3635;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)` via rejection sampling.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % span;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Errors and configuration
// ---------------------------------------------------------------------------

/// A failed test case (assertion failure inside a `proptest!` body).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-`proptest!` block configuration. Only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }

    /// Sample one value into a [`strategy::ValueTree`] (lower-level API
    /// mirroring `proptest::strategy::Strategy::new_tree`).
    fn new_tree(
        &self,
        runner: &mut test_runner::TestRunner,
    ) -> Result<strategy::Sampled<Self::Value>, TestCaseError> {
        Ok(strategy::Sampled(self.sample(&mut runner.rng)))
    }
}

/// Lower-level strategy API (`proptest::strategy`).
pub mod strategy {
    pub use crate::Strategy;

    /// A generated value wrapper (no shrinking in the stub).
    pub trait ValueTree {
        /// The generated type.
        type Value;
        /// The current (and only) value of this tree.
        fn current(&self) -> Self::Value;
    }

    /// The single-value tree returned by [`Strategy::new_tree`].
    #[derive(Debug, Clone)]
    pub struct Sampled<T>(pub T);

    impl<T: Clone> ValueTree for Sampled<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }
}

/// Test-runner plumbing (`proptest::test_runner`).
pub mod test_runner {
    use crate::TestRng;

    /// Drives explicit sampling via [`crate::Strategy::new_tree`].
    pub struct TestRunner {
        pub(crate) rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed: every call sequence reproduces.
        pub fn deterministic() -> TestRunner {
            TestRunner { rng: TestRng::deterministic("proptest::test_runner", 0) }
        }
    }

    impl Default for TestRunner {
        fn default() -> TestRunner {
            TestRunner::deterministic()
        }
    }
}

/// Object-safe strategy erasure.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy (result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights changed during sampling")
    }
}

// ----- integer ranges and full-domain `any` -----

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
        impl Arbitrary for $t {
            fn any_strategy() -> AnyStrategy<$t> {
                AnyStrategy(std::marker::PhantomData)
            }
        }
        impl SampleAny for $t {
            fn sample_any(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, usize);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: SampleAny {
    /// The canonical strategy for this type.
    fn any_strategy() -> AnyStrategy<Self>;
}

/// Raw full-domain sampling used by [`AnyStrategy`].
pub trait SampleAny: Sized {
    /// Draw a uniformly random value over the whole domain.
    fn sample_any(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn any_strategy() -> AnyStrategy<bool> {
        AnyStrategy(std::marker::PhantomData)
    }
}
impl SampleAny for bool {
    fn sample_any(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: SampleAny> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_any(rng)
    }
}

/// Full-domain strategy for a type (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::any_strategy()
}

// ----- tuple strategies -----

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ----- collections -----

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        size: Range<usize>,
    }

    /// Generate maps with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K, V>(key: K, val: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, val, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len)
                .map(|_| (self.key.sample(rng), self.val.sample(rng)))
                .collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate sets with up to `size` elements (duplicates collapse).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted choice between strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), __l
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), __l
            )));
        }
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` runs
/// `cases` times over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::deterministic(__path, __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!("\n  ", stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}", $arg));
                    )+
                    __s
                };
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:{}",
                        __path, __case, __cfg.cases, __e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn oneof_and_collections(
            v in prop::collection::vec(prop_oneof![3 => 0u8..10, 1 => (200u8..=255).prop_map(|b| b)], 1..20),
            m in prop::collection::btree_map(0u32..8, any::<bool>(), 0..6),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|b| *b < 10 || *b >= 200));
            prop_assert!(m.len() < 6);
        }

        #[test]
        fn tuples_and_just(pair in (0u64..4, Just(7u8)), z in any::<u64>()) {
            prop_assert_eq!(pair.1, 7);
            prop_assert!(pair.0 < 4);
            prop_assert_ne!(pair.0, 9, "impossible value {}", z);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::deterministic("t", 1);
        let mut b = crate::TestRng::deterministic("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
