//! Offline stand-in for the `serde` crate.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal, hand-rolled replacement that covers the
//! exact API surface this repository uses: `#[derive(Serialize, Deserialize)]`
//! on concrete (non-generic) structs and enums, the attributes
//! `#[serde(transparent)]`, `#[serde(rename_all = "snake_case")]` and
//! `#[serde(default)]`, and the `serde_json` free functions.
//!
//! Instead of serde's visitor architecture, this stub routes everything
//! through one dynamic [`Value`] tree: `Serialize` lowers a type to a
//! `Value`, `Deserialize` raises it back. `serde_json` then prints/parses
//! `Value` as JSON text. The wire format matches real serde closely enough
//! for this repository (externally tagged enums, maps as JSON objects with
//! stringified keys, transparent newtypes).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the stub's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error { msg: m.into() }
    }

    /// Error for a missing struct field.
    pub fn missing(field: &str) -> Error {
        Error::msg(format!("missing field `{field}`"))
    }

    /// Error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error::msg(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a serialization tree.
    fn to_value(&self) -> Value;
}

/// Raise a value back out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a serialization tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Find a field in object pairs (helper used by derived code).
pub fn __find<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Render a map key `Value` as a JSON object key string.
pub fn __key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::expected("stringifiable map key", other)),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    // Map keys arrive as strings; accept numeric strings.
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| Error::expected(stringify!($t), v))?,
                    other => return Err(Error::expected(stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| Error::expected(stringify!($t), v))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::expected(stringify!($t), v))?,
                    Value::I64(n) => *n,
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| Error::expected(stringify!($t), v))?,
                    other => return Err(Error::expected(stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| Error::expected(stringify!($t), v))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = __key_to_string(&k.to_value())
                        .expect("unsupported map key type for serialization");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        pairs
            .iter()
            .map(|(k, val)| {
                let key = K::from_value(&Value::Str(k.clone()))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = __key_to_string(&k.to_value())
                        .expect("unsupported map key type for serialization");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        pairs
            .iter()
            .map(|(k, val)| {
                let key = K::from_value(&Value::Str(k.clone()))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected array of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Smart pointers (the `rc` feature of real serde)
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Rc::new)
    }
}

impl Deserialize for Arc<[u8]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<u8>::from_value(v).map(Arc::from)
    }
}

impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(Arc::from)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_keys_stringify_and_parse_back() {
        let mut m = BTreeMap::new();
        m.insert(3u64, "x".to_string());
        let v = m.to_value();
        assert_eq!(v.get("3").unwrap(), &Value::Str("x".into()));
        let back: BTreeMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_and_arc_slice_roundtrip() {
        let data: Arc<[u8]> = Arc::from(vec![1u8, 2, 3]);
        let v = data.to_value();
        let back: Arc<[u8]> = Deserialize::from_value(&v).unwrap();
        assert_eq!(&*back, &[1, 2, 3]);
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
    }
}
