//! The second §5.2.4 optimization: synchronization messages omit cut
//! entries for continuing members, whose own in-stream syncs terminate
//! their message sequences. End-to-end runs with the full checker battery
//! confirm the optimized algorithm still satisfies every spec.

use vsgm_core::Config;
use vsgm_harness::sim::{procs, procs_of};
use vsgm_harness::{Sim, SimOptions};
use vsgm_spec::LivenessSpec;
use vsgm_types::{AppMsg, Event, NetMsg, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn optimized_sim(n: usize, seed: u64) -> Sim {
    Sim::new_paper(n, Config::optimized(), SimOptions { seed, ..Default::default() })
}

#[test]
fn optimized_stack_runs_clean_with_workload() {
    for seed in 0..8 {
        let mut sim = optimized_sim(4, seed);
        sim.reconfigure(&procs(4));
        for i in 1..=4 {
            sim.send(p(i), AppMsg::from(format!("m{i}").as_str()));
        }
        sim.run_to_quiescence();
        let v = sim.reconfigure(&procs(4));
        sim.add_checker(LivenessSpec::new(v));
        for i in 1..=4 {
            sim.send(p(i), AppMsg::from(format!("n{i}").as_str()));
        }
        sim.run_to_quiescence();
        sim.assert_clean();
        sim.assert_paper_invariants();
    }
}

#[test]
fn optimized_stack_handles_membership_shrink() {
    let mut sim = optimized_sim(5, 3);
    sim.reconfigure(&procs(5));
    for i in 1..=5 {
        sim.send(p(i), AppMsg::from(format!("pre{i}").as_str()));
    }
    sim.run_to_quiescence();
    let v = sim.reconfigure(&procs_of(&[1, 2, 3]));
    sim.add_checker(LivenessSpec::new(v));
    sim.run_to_quiescence();
    sim.assert_clean();
    for i in 1..=3 {
        assert_eq!(sim.endpoint(p(i)).current_view().len(), 3);
    }
}

#[test]
fn optimized_stack_handles_crash_and_recovery() {
    let mut sim = optimized_sim(4, 5);
    sim.reconfigure(&procs(4));
    sim.send(p(2), AppMsg::from("before"));
    sim.run_to_quiescence();
    sim.crash(p(4));
    sim.reconfigure(&procs_of(&[1, 2, 3]));
    sim.run_to_quiescence();
    sim.recover(p(4));
    sim.reconfigure(&procs(4));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn wire_cuts_are_actually_smaller() {
    // Compare total sync bytes with/without the optimization for an
    // identical stable view change with in-view traffic.
    fn sync_bytes(cfg: Config) -> u64 {
        let mut sim =
            Sim::new_paper(6, cfg, SimOptions { seed: 9, ..Default::default() });
        sim.reconfigure(&procs(6));
        for i in 1..=6 {
            sim.send(p(i), AppMsg::from("traffic"));
        }
        sim.run_to_quiescence();
        sim.reset_net_stats();
        sim.reconfigure(&procs(6));
        sim.run_to_quiescence();
        sim.assert_clean();
        sim.net().stats().bytes("sync_msg")
    }
    let plain = sync_bytes(Config::default());
    let optimized = sync_bytes(Config { implicit_cuts: true, ..Config::default() });
    assert!(
        optimized < plain,
        "implicit cuts should shrink sync bytes: {optimized} vs {plain}"
    );
}

#[test]
fn wire_sync_messages_carry_no_continuing_member_entries() {
    let mut sim = optimized_sim(3, 11);
    sim.reconfigure(&procs(3));
    for i in 1..=3 {
        sim.send(p(i), AppMsg::from("x"));
    }
    sim.run_to_quiescence();
    let mark = sim.trace().len();
    sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    sim.assert_clean();
    let mut saw_sync = false;
    for e in &sim.trace().entries()[mark..] {
        if let Event::NetSend { msg: NetMsg::Sync(payload), .. } = &e.event {
            if payload.view.is_some() {
                saw_sync = true;
                assert_eq!(
                    payload.cut.len(),
                    0,
                    "all members continue, so every cut entry should be elided: {payload:?}"
                );
            }
        }
    }
    assert!(saw_sync, "expected sync traffic");
}

#[test]
fn departed_member_entries_still_travel() {
    // A member crashes with undelivered messages: its entries must remain
    // on the wire (it will not produce an in-stream sync), and the
    // survivors must still agree on its cut.
    let mut sim = optimized_sim(3, 13);
    sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    sim.send(p(3), AppMsg::from("from the departed"));
    sim.run_to_quiescence();
    sim.crash(p(3));
    let mark = sim.trace().len();
    let v = sim.reconfigure(&procs_of(&[1, 2]));
    sim.add_checker(LivenessSpec::new(v));
    sim.run_to_quiescence();
    sim.assert_clean();
    let mut saw_entry_for_p3 = false;
    for e in &sim.trace().entries()[mark..] {
        if let Event::NetSend { msg: NetMsg::Sync(payload), .. } = &e.event {
            if payload.cut.get(p(3)) > 0 {
                saw_entry_for_p3 = true;
            }
        }
    }
    assert!(saw_entry_for_p3, "departed member's cut entry must stay on the wire");
}
