//! Fine-grained schedule exploration.
//!
//! The deterministic harness fires each endpoint's actions in canonical
//! order; here we drive the composed system one *randomly chosen* enabled
//! action at a time — endpoint transitions interleaved with per-channel
//! network deliveries in arbitrary orders — and replay every resulting
//! trace against the safety specs. This is the executable analogue of
//! quantifying over all fair executions in the paper's proofs.

use std::collections::{BTreeMap, VecDeque};
use vsgm_core::{Config, Effect, Endpoint, Input};
use vsgm_ioa::{Automaton, CheckSet, SimRng, SimTime, Trace};
use vsgm_types::{AppMsg, Event, NetMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

struct Composition {
    eps: BTreeMap<ProcessId, Endpoint>,
    channels: BTreeMap<(ProcessId, ProcessId), VecDeque<NetMsg>>,
    trace: Trace,
    rng: SimRng,
}

impl Composition {
    fn new(n: u64, seed: u64) -> Self {
        Composition {
            eps: (1..=n)
                .map(|i| (ProcessId::new(i), Endpoint::new(ProcessId::new(i), Config::default())))
                .collect(),
            channels: BTreeMap::new(),
            trace: Trace::new(),
            rng: SimRng::new(seed),
        }
    }

    fn record(&mut self, e: Event) {
        self.trace.record(SimTime::ZERO, e);
    }

    fn route(&mut self, from: ProcessId, effects: Vec<Effect>) {
        for eff in effects {
            match eff {
                Effect::NetSend { to, msg } => {
                    self.record(Event::NetSend { p: from, set: to.clone(), msg: msg.clone() });
                    for dest in to {
                        if dest != from {
                            self.channels.entry((from, dest)).or_default().push_back(msg.clone());
                        }
                    }
                }
                Effect::SetReliable(set) => self.record(Event::Reliable { p: from, set }),
                Effect::DeliverApp { from: sender, msg } => {
                    self.record(Event::Deliver { p: from, q: sender, msg });
                }
                Effect::InstallView { view, transitional } => {
                    self.record(Event::GcsView { p: from, view, transitional });
                }
                Effect::Block => {
                    self.record(Event::Block { p: from });
                    self.record(Event::BlockOk { p: from });
                    let more = self.eps.get_mut(&from).unwrap().handle(Input::BlockOk);
                    self.route(from, more);
                }
                // Audit is off in these compositions; never fires.
                Effect::Reconciled => {}
            }
        }
    }

    fn input(&mut self, p: ProcessId, event: Event, input: Input) {
        self.record(event);
        let effects = self.eps.get_mut(&p).unwrap().handle(input);
        self.route(p, effects);
    }

    /// Fires one randomly chosen enabled step (an endpoint action or a
    /// channel-head delivery). Returns false when fully quiescent.
    fn random_step(&mut self) -> bool {
        // Enumerate choices: (endpoint, action index) and nonempty channels.
        let mut choices: Vec<(u8, ProcessId, ProcessId, usize)> = Vec::new();
        for (p, ep) in &self.eps {
            for i in 0..ep.enabled_actions().len() {
                choices.push((0, *p, *p, i));
            }
        }
        for ((from, to), chan) in &self.channels {
            if !chan.is_empty() {
                choices.push((1, *from, *to, 0));
            }
        }
        if choices.is_empty() {
            return false;
        }
        let (kind, a, b, idx) = choices[self.rng.index(choices.len())];
        match kind {
            0 => {
                let ep = self.eps.get_mut(&a).unwrap();
                let actions = ep.enabled_actions();
                // The set may have changed? No inputs occurred since
                // enumeration, so it is stable.
                let action = actions[idx].clone();
                let effects = ep.fire(&action);
                self.route(a, effects);
            }
            _ => {
                let msg = self.channels.get_mut(&(a, b)).unwrap().pop_front().unwrap();
                self.record(Event::NetDeliver { p: a, q: b, msg: msg.clone() });
                let effects = self.eps.get_mut(&b).unwrap().handle(Input::Net { from: a, msg });
                self.route(b, effects);
            }
        }
        true
    }

    fn run_random(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            if !self.random_step() {
                return;
            }
        }
        panic!("composition did not quiesce within {max_steps} steps");
    }

    fn membership(&mut self, members: &[u64], epoch: u64, cid: u64) -> View {
        let set: ProcSet = members.iter().map(|&i| ProcessId::new(i)).collect();
        for &m in members {
            let p = ProcessId::new(m);
            self.input(
                p,
                Event::MbrshpStartChange { p, cid: StartChangeId::new(cid), set: set.clone() },
                Input::StartChange { cid: StartChangeId::new(cid), set: set.clone() },
            );
            // Random interleaving between notifications too.
            for _ in 0..self.rng.range(0, 5) {
                self.random_step();
            }
        }
        let view = View::new(
            ViewId::new(epoch, 0),
            set.iter().copied(),
            set.iter().map(|m| (*m, StartChangeId::new(cid))),
        );
        for &m in members {
            let p = ProcessId::new(m);
            self.input(
                p,
                Event::MbrshpView { p, view: view.clone() },
                Input::MbrshpView(view.clone()),
            );
            for _ in 0..self.rng.range(0, 5) {
                self.random_step();
            }
        }
        view
    }

    fn send(&mut self, i: u64, text: &str) {
        let p = ProcessId::new(i);
        // Only send when the client would be allowed to (not blocked):
        // approximate by skipping while a change with an acked block is
        // pending — the CLIENT spec checker would flag a blocked send.
        self.input(
            p,
            Event::Send { p, msg: AppMsg::from(text) },
            Input::AppSend(AppMsg::from(text)),
        );
    }
}

fn explore(seed: u64) {
    let mut comp = Composition::new(3, seed);
    comp.membership(&[1, 2, 3], 1, 1);
    comp.run_random(100_000);
    comp.send(1, "a1");
    comp.send(2, "b1");
    comp.run_random(100_000);
    comp.membership(&[1, 2], 2, 2);
    comp.run_random(100_000);
    comp.send(2, "b2");
    comp.run_random(100_000);

    // Validate the trace against every safety spec except CLIENT (sends
    // here are injected without consulting a blocking client, so the
    // block discipline is exercised by the other suites).
    let mut checks = CheckSet::new();
    checks.add(vsgm_spec::MbrshpSpec::new());
    checks.add(vsgm_spec::CoRfifoSpec::new());
    checks.add(vsgm_spec::WvRfifoSpec::new());
    checks.add(vsgm_spec::VsRfifoSpec::new());
    checks.add(vsgm_spec::TransSetSpec::new());
    checks.run(comp.trace.entries());
    assert!(
        checks.is_clean(),
        "seed {seed}: {:?}\ntrace tail: {:#?}",
        checks.violations(),
        comp.trace.entries().iter().rev().take(15).collect::<Vec<_>>()
    );

    // Fairness sanity: with the full drain, the final view installed at
    // both survivors.
    for i in [1u64, 2] {
        let p = ProcessId::new(i);
        let installed = comp
            .trace
            .entries()
            .iter()
            .any(|e| matches!(&e.event, Event::GcsView { p: q, view, .. }
                              if *q == p && view.id() == ViewId::new(2, 0)));
        assert!(installed, "seed {seed}: p{i} never installed the final view");
    }
}

#[test]
fn random_interleavings_satisfy_specs() {
    for seed in 0..50 {
        explore(seed);
    }
}

#[test]
fn deeper_exploration_with_more_seeds() {
    for seed in 1000..1080 {
        explore(seed);
    }
}

/// Exploration with a crash injected at a random point of the
/// reconfiguration: the survivors must still converge under arbitrary
/// interleavings, with the crashed process's channels wiped (§8).
fn explore_with_crash(seed: u64) {
    let mut comp = Composition::new(3, seed);
    comp.membership(&[1, 2, 3], 1, 1);
    comp.run_random(100_000);
    comp.send(1, "pre-crash");
    // Random partial progress, then p3 crashes.
    for _ in 0..comp.rng.range(0, 40) {
        comp.random_step();
    }
    let victim = ProcessId::new(3);
    comp.record(Event::Crash { p: victim });
    comp.eps.get_mut(&victim).unwrap().handle(Input::Crash);
    // §8: the crash wipes the victim's outgoing channels.
    for ((from, _), chan) in comp.channels.iter_mut() {
        if *from == victim {
            chan.clear();
        }
    }
    comp.membership(&[1, 2], 2, 2);
    comp.run_random(100_000);
    comp.send(2, "post-crash");
    comp.run_random(100_000);

    let mut checks = CheckSet::new();
    checks.add(vsgm_spec::MbrshpSpec::new());
    checks.add(vsgm_spec::WvRfifoSpec::new());
    checks.add(vsgm_spec::VsRfifoSpec::new());
    checks.add(vsgm_spec::TransSetSpec::new());
    checks.run(comp.trace.entries());
    assert!(checks.is_clean(), "seed {seed}: {:?}", checks.violations());
    for i in [1u64, 2] {
        let p = ProcessId::new(i);
        let installed = comp.trace.entries().iter().any(|e| {
            matches!(&e.event, Event::GcsView { p: q, view, .. }
                     if *q == p && view.id() == ViewId::new(2, 0))
        });
        assert!(installed, "seed {seed}: p{i} never installed the survivor view");
    }
}

#[test]
fn crash_interleavings_satisfy_specs() {
    for seed in 5000..5060 {
        explore_with_crash(seed);
    }
}
