//! End-to-end scenarios across the full stack, each validated online
//! against every safety specification automaton (Figs. 2–7 + CLIENT) and,
//! where meaningful, against liveness Property 4.2.

use vsgm_core::{Config, ForwardStrategyKind, Stack};
use vsgm_harness::sim::{procs, procs_of};
use vsgm_harness::{Sim, SimOptions};
use vsgm_net::LatencyModel;
use vsgm_spec::LivenessSpec;
use vsgm_types::{AppMsg, Event, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn opts(seed: u64) -> SimOptions {
    SimOptions { seed, latency: LatencyModel::lan(), check: true, shuffle_polling: true }
}

#[test]
fn churn_with_workload_many_seeds() {
    for seed in 0..10 {
        let mut sim = Sim::new_paper(5, Config::default(), opts(seed));
        sim.reconfigure(&procs(5));
        for round in 0u64..4 {
            for i in 1..=5 {
                sim.send(p(i), AppMsg::from(format!("r{round} from {i}").as_str()));
            }
            sim.run_to_quiescence();
            // Shrink then regrow.
            sim.reconfigure(&procs_of(&[1, 2, 3]));
            sim.run_to_quiescence();
            sim.send(p(2), AppMsg::from(format!("small r{round}").as_str()));
            sim.run_to_quiescence();
            sim.reconfigure(&procs(5));
            sim.run_to_quiescence();
        }
        sim.assert_clean();
    }
}

#[test]
fn repeated_partition_merge_cycles() {
    let mut sim = Sim::new_paper(6, Config::default(), opts(3));
    sim.reconfigure(&procs(6));
    sim.run_to_quiescence();
    for cycle in 0..3 {
        sim.partition(&[vec![p(1), p(2), p(3)], vec![p(4), p(5), p(6)]]);
        sim.start_change_for(&procs_of(&[1, 2, 3]), &procs_of(&[1, 2, 3]));
        sim.form_view(&procs_of(&[1, 2, 3]));
        sim.start_change_for(&procs_of(&[4, 5, 6]), &procs_of(&[4, 5, 6]));
        sim.form_view(&procs_of(&[4, 5, 6]));
        sim.run_to_quiescence();
        sim.send(p(1), AppMsg::from(format!("A{cycle}").as_str()));
        sim.send(p(4), AppMsg::from(format!("B{cycle}").as_str()));
        sim.run_to_quiescence();
        sim.heal();
        sim.reconfigure(&procs(6));
        sim.run_to_quiescence();
        sim.send(p(6), AppMsg::from(format!("joint{cycle}").as_str()));
        sim.run_to_quiescence();
    }
    sim.assert_clean();
    // Everyone ends in the same 6-member view.
    let v1 = sim.endpoint(p(1)).current_view().clone();
    for i in 2..=6 {
        assert_eq!(sim.endpoint(p(i)).current_view(), &v1);
    }
}

#[test]
fn asymmetric_partition_three_ways() {
    let mut sim = Sim::new_paper(6, Config::default(), opts(9));
    sim.reconfigure(&procs(6));
    sim.run_to_quiescence();
    sim.partition(&[vec![p(1)], vec![p(2), p(3)], vec![p(4), p(5), p(6)]]);
    sim.start_change_for(&procs_of(&[1]), &procs_of(&[1]));
    sim.form_view(&procs_of(&[1]));
    sim.start_change_for(&procs_of(&[2, 3]), &procs_of(&[2, 3]));
    sim.form_view(&procs_of(&[2, 3]));
    sim.start_change_for(&procs_of(&[4, 5, 6]), &procs_of(&[4, 5, 6]));
    sim.form_view(&procs_of(&[4, 5, 6]));
    sim.run_to_quiescence();
    // Singleton keeps self-delivering.
    sim.send(p(1), AppMsg::from("alone"));
    sim.run_to_quiescence();
    sim.heal();
    let merged = sim.reconfigure(&procs(6));
    sim.add_checker(LivenessSpec::new(merged));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn crash_during_reconfiguration() {
    let mut sim = Sim::new_paper(4, Config::default(), opts(5));
    sim.reconfigure(&procs(4));
    sim.run_to_quiescence();
    // Change starts; p4 crashes before the view forms; membership
    // cascades to exclude it.
    sim.start_change(&procs(4));
    sim.crash(p(4));
    sim.start_change_for(&procs_of(&[1, 2, 3]), &procs_of(&[1, 2, 3]));
    let v = sim.form_view(&procs_of(&[1, 2, 3]));
    sim.add_checker(LivenessSpec::new(v));
    sim.run_to_quiescence();
    sim.send(p(1), AppMsg::from("post-crash"));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn sender_crash_with_forwarding_under_both_strategies() {
    for strategy in [ForwardStrategyKind::Eager, ForwardStrategyKind::MinCopy] {
        let cfg = Config { forward: strategy, ..Config::default() };
        let mut sim = Sim::new_paper(5, cfg, opts(11));
        sim.reconfigure(&procs(5));
        sim.run_to_quiescence();
        // p5's burst reaches {p4} only; p1..p3 cut off.
        sim.partition(&[vec![p(4), p(5)], vec![p(1), p(2), p(3)]]);
        for k in 0..5 {
            sim.send(p(5), AppMsg::from(format!("burst{k}").as_str()));
        }
        sim.run_to_quiescence();
        sim.crash(p(5));
        sim.heal();
        let v = sim.reconfigure(&procs_of(&[1, 2, 3, 4]));
        sim.add_checker(LivenessSpec::new(v));
        sim.run_to_quiescence();
        sim.assert_clean();
        // Everyone delivered all 5 of p5's messages (forwarded by p4).
        for i in 1..=4 {
            let count = sim
                .trace()
                .entries()
                .iter()
                .filter(|e| {
                    matches!(&e.event, Event::Deliver { p: to, q: from, .. }
                             if *to == p(i) && *from == p(5))
                })
                .count();
            assert_eq!(count, 5, "p{i} missing messages under {strategy:?}");
        }
    }
}

#[test]
fn cascaded_changes_with_joiners() {
    let mut sim = Sim::new_paper(5, Config::default(), opts(13));
    sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    // Change starts for {1,2,3}, then p4 and p5 ask to join mid-change.
    sim.start_change(&procs(3));
    sim.start_change(&procs(4));
    sim.start_change(&procs(5));
    let v = sim.form_view(&procs(5));
    sim.run_to_quiescence();
    sim.assert_clean();
    assert_eq!(v.len(), 5);
    // Exactly one view delivered per process despite three suggestions.
    let views = sim
        .trace()
        .entries()
        .iter()
        .filter(|e| matches!(&e.event, Event::GcsView { view, .. } if view == &v))
        .count();
    assert_eq!(views, 5);
}

#[test]
fn slim_sync_with_joiners_full_run() {
    let cfg = Config { slim_sync: true, ..Config::default() };
    let mut sim = Sim::new_paper(6, cfg, opts(17));
    sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    sim.send(p(1), AppMsg::from("old view traffic"));
    sim.run_to_quiescence();
    let v = sim.reconfigure(&procs(6));
    sim.add_checker(LivenessSpec::new(v));
    sim.send(p(6), AppMsg::from("joiner speaks"));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn aggregation_full_run_with_leader_change() {
    let cfg = Config { aggregation: true, ..Config::default() };
    let mut sim = Sim::new_paper(4, cfg, opts(19));
    sim.reconfigure(&procs(4));
    sim.run_to_quiescence();
    sim.send(p(2), AppMsg::from("agg traffic"));
    sim.run_to_quiescence();
    // The leader (p1) crashes: the next change elects p2 implicitly.
    sim.crash(p(1));
    let v = sim.reconfigure(&procs_of(&[2, 3, 4]));
    sim.add_checker(LivenessSpec::new(v));
    sim.run_to_quiescence();
    sim.send(p(3), AppMsg::from("after leader death"));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn vs_stack_without_sd_runs_clean_on_vs_specs() {
    // VS_RFIFO+TS satisfies WV/VS/TS but not SELF; check with a manual
    // checker set that excludes SELF and CLIENT-block flows.
    let cfg = Config { stack: Stack::VsTs, ..Config::default() };
    let mut sim = Sim::new_paper(3, cfg, SimOptions { check: false, ..opts(23) });
    sim.reconfigure(&procs(3));
    sim.send(p(1), AppMsg::from("x"));
    sim.run_to_quiescence();
    sim.reconfigure(&procs_of(&[1, 2]));
    sim.run_to_quiescence();
    let mut checks = vsgm_ioa::CheckSet::new();
    checks.add(vsgm_spec::MbrshpSpec::new());
    checks.add(vsgm_spec::CoRfifoSpec::new());
    checks.add(vsgm_spec::WvRfifoSpec::new());
    checks.add(vsgm_spec::VsRfifoSpec::new());
    checks.add(vsgm_spec::TransSetSpec::new());
    checks.run(sim.trace().entries());
    checks.assert_clean();
}

#[test]
fn high_latency_wan_profile() {
    let mut sim = Sim::new_paper(
        4,
        Config::default(),
        SimOptions { seed: 29, latency: LatencyModel::wan(), check: true, shuffle_polling: true },
    );
    sim.reconfigure(&procs(4));
    for i in 1..=4 {
        sim.send(p(i), AppMsg::from(format!("wan {i}").as_str()));
    }
    sim.run_to_quiescence();
    sim.reconfigure(&procs_of(&[1, 2]));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn messages_queued_while_blocked_are_released_after_view() {
    let mut sim = Sim::new_paper(2, Config::default(), opts(31));
    sim.reconfigure(&procs(2));
    sim.run_to_quiescence();
    // Start a change; the auto-acking client blocks instantly; sends go
    // into its queue and must surface after the next view.
    sim.start_change(&procs(2));
    sim.send(p(1), AppMsg::from("queued"));
    let v = sim.form_view(&procs(2));
    sim.add_checker(LivenessSpec::new(v));
    sim.run_to_quiescence();
    sim.assert_clean();
    let delivered = sim
        .trace()
        .entries()
        .iter()
        .any(|e| matches!(&e.event, Event::Deliver { p: to, msg, .. }
                          if *to == p(2) && *msg == AppMsg::from("queued")));
    assert!(delivered, "queued message must flow after the view change");
}
