//! Differential conformance suite for endpoint-level batching: a batched
//! endpoint must be *observationally equivalent* to the unbatched one.
//!
//! Each randomized schedule is executed twice — once with batching off
//! and once with a batched configuration — and the application-facing
//! projections of the two traces are compared:
//!
//! * per-(receiver, sender) delivered payload sequences must be
//!   byte-identical (batching repacks frames; it must never reorder,
//!   drop, or duplicate a message), and
//! * per-receiver view installation sequences (view + transitional set)
//!   must be identical (the forced pre-cut flush keeps Fig. 10's
//!   synchronization semantics untouched).
//!
//! Both arms additionally run under the full spec-checker oracle
//! (`check: true`), so WV_RFIFO / VS_RFIFO / SELF / CO_RFIFO judge every
//! schedule directly. A proptest block then sweeps the batch-boundary
//! space (count limit, byte budget, linger) for the no-reorder /
//! no-drop / no-duplicate guarantee in a stable view.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vsgm_core::{BatchConfig, Config};
use vsgm_harness::{Sim, SimOptions};
use vsgm_ioa::SimTime;
use vsgm_net::LatencyModel;
use vsgm_types::{AppMsg, Event, ProcSet, ProcessId, View};

/// One schedule operation (deliberately fault-free: with no loss, the
/// two arms must agree *exactly*, not just up to the spec envelope).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Process multicasts a payload unique to (sender, counter).
    Send(u64),
    /// Full-group reconfiguration — when it lands right after sends it
    /// races the view change against a half-full batch.
    Reconfigure,
    /// Let simulated time pass (linger deadlines fire, arrivals land).
    RunForMs(u64),
    /// Drain to quiescence.
    Run,
}

/// splitmix64 — deterministic schedule generator without a rand dep.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generates a randomized schedule for `n` processes. Every schedule
/// contains at least one send–send–reconfigure run with no time passing
/// in between, so a view change races a half-full batch in the batched
/// arm (the linger deadline cannot have fired yet).
fn gen_schedule(seed: u64, n: u64) -> Vec<Op> {
    let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(seed | 1));
    let mut ops = Vec::new();
    let len = 10 + rng.below(12);
    for _ in 0..len {
        ops.push(match rng.below(10) {
            0..=5 => Op::Send(1 + rng.below(n)),
            6 => Op::Reconfigure,
            7 | 8 => Op::RunForMs(1 + rng.below(4)),
            _ => Op::Run,
        });
    }
    // The guaranteed race: two back-to-back sends immediately followed by
    // a reconfigure, inserted at a random position.
    let at = (rng.below(ops.len() as u64)) as usize;
    ops.splice(
        at..at,
        [Op::Send(1 + rng.below(n)), Op::Send(1 + rng.below(n)), Op::Reconfigure],
    );
    ops.push(Op::Run);
    ops
}

/// The application-facing projection of one arm's trace.
#[derive(Debug, PartialEq)]
struct AppTrace {
    /// `(receiver, sender)` → delivered payloads, in delivery order.
    channels: BTreeMap<(ProcessId, ProcessId), Vec<AppMsg>>,
    /// receiver → installed views with their transitional sets, in order.
    views: BTreeMap<ProcessId, Vec<(View, ProcSet)>>,
}

/// Runs `ops` under the full oracle with the given batch configuration
/// and returns the application-facing projection.
fn run_arm(seed: u64, n: u64, ops: &[Op], batch: BatchConfig) -> AppTrace {
    let arm = if batch.enabled() { "batched" } else { "unbatched" };
    let mut sim = Sim::new_paper(
        n as usize,
        Config { batch, ..Config::default() },
        SimOptions { seed, latency: LatencyModel::lan(), check: true, shuffle_polling: true },
    );
    let all: ProcSet = (1..=n).map(ProcessId::new).collect();
    sim.reconfigure(&all);
    let mut msg_no = 0u64;
    for op in ops {
        match op {
            Op::Send(p) => {
                msg_no += 1;
                sim.send(ProcessId::new(*p), AppMsg::from(format!("s{p}-m{msg_no}").as_str()));
            }
            Op::Reconfigure => {
                sim.reconfigure(&all);
            }
            Op::RunForMs(ms) => sim.run_for(SimTime::from_millis(*ms)),
            Op::Run => sim.run_to_quiescence(),
        }
        sim.assert_paper_invariants();
    }
    sim.run_to_quiescence();
    sim.assert_paper_invariants();
    let violations = sim.finish();
    assert!(violations.is_empty(), "seed {seed} ({arm} arm): {violations:?}\nops: {ops:?}");
    let mut channels: BTreeMap<(ProcessId, ProcessId), Vec<AppMsg>> = BTreeMap::new();
    let mut views: BTreeMap<ProcessId, Vec<(View, ProcSet)>> = BTreeMap::new();
    for e in sim.trace().entries() {
        match &e.event {
            Event::Deliver { p, q, msg } => {
                channels.entry((*p, *q)).or_default().push(msg.clone());
            }
            Event::GcsView { p, view, transitional } => {
                views.entry(*p).or_default().push((view.clone(), transitional.clone()));
            }
            _ => {}
        }
    }
    AppTrace { channels, views }
}

fn assert_arms_agree(seed: u64, n: u64, ops: &[Op], batch: BatchConfig) {
    let unbatched = run_arm(seed, n, ops, BatchConfig::off());
    let batched = run_arm(seed, n, ops, batch.clone());
    assert_eq!(
        unbatched.channels, batched.channels,
        "seed {seed}: delivery traces diverged under {batch:?}\nops: {ops:?}"
    );
    assert_eq!(
        unbatched.views, batched.views,
        "seed {seed}: view sequences diverged under {batch:?}\nops: {ops:?}"
    );
}

#[test]
fn fifty_randomized_schedules_are_batching_invariant() {
    // ≥ 50 randomized schedules, alternating the batched arm between the
    // small (short linger) and large (count-dominated) presets, across
    // group sizes 3..=5. Every schedule embeds a view change racing a
    // half-full batch (see `gen_schedule`).
    for seed in 0..50u64 {
        let n = 3 + seed % 3;
        let ops = gen_schedule(seed, n);
        let batch = if seed % 2 == 0 { BatchConfig::small() } else { BatchConfig::large() };
        assert_arms_agree(seed, n, &ops, batch);
    }
}

#[test]
fn view_change_racing_a_half_full_batch_is_equivalent() {
    // Pinned worst case: an effectively infinite linger, so the batch can
    // *only* be released by the view change's forced pre-cut flush. The
    // batched arm still must deliver exactly what the unbatched arm does,
    // in the same views.
    let ops = vec![
        Op::Send(1),
        Op::Send(1),
        Op::Send(2),
        Op::Reconfigure,
        Op::Run,
        Op::Send(3),
        Op::Run,
    ];
    let held_forever = BatchConfig { max_msgs: 64, max_bytes: 64 * 1024, linger_us: u64::MAX / 2 };
    assert_arms_agree(0xBA7C, 3, &ops, held_forever);
}

#[test]
fn schedules_exercise_every_flush_cause() {
    // Sanity on the suite itself: across the 50 schedules the batched
    // arms must hit count-, linger-, and view-change-triggered flushes
    // (otherwise the differential claim is weaker than advertised).
    // Count flushes via the obs registry of a few targeted schedules.
    use vsgm_obs::names;
    let flush_counts = |ops: &[Op], batch: BatchConfig| -> (u64, u64, u64) {
        let mut sim = Sim::new_paper(
            3,
            Config { batch, ..Config::default() },
            SimOptions { seed: 1, latency: LatencyModel::lan(), check: true, shuffle_polling: true },
        );
        sim.enable_obs();
        let all: ProcSet = (1..=3).map(ProcessId::new).collect();
        sim.reconfigure(&all);
        let mut msg_no = 0u64;
        for op in ops {
            match op {
                Op::Send(p) => {
                    msg_no += 1;
                    sim.send(ProcessId::new(*p), AppMsg::from(format!("f{msg_no}").as_str()));
                }
                Op::Reconfigure => {
                    sim.reconfigure(&all);
                }
                Op::RunForMs(ms) => sim.run_for(SimTime::from_millis(*ms)),
                Op::Run => sim.run_to_quiescence(),
            }
        }
        sim.run_to_quiescence();
        assert!(sim.finish().is_empty());
        let rec = sim.take_obs().expect("obs enabled");
        let reg = rec.registry();
        (
            reg.counter(names::EP_BATCH_FLUSH_COUNT),
            reg.counter(names::EP_BATCH_FLUSH_LINGER),
            reg.counter(names::EP_BATCH_FLUSH_VIEW_CHANGE),
        )
    };
    // Count: nine sends against max_msgs = 2 with a long linger.
    let long = BatchConfig { max_msgs: 2, max_bytes: 64 * 1024, linger_us: 1_000_000 };
    let (count, _, _) = flush_counts(&[Op::Send(1); 9], long.clone());
    assert!(count >= 1, "no count-triggered flush");
    // Linger: a single send, then time passes.
    let (_, linger, _) =
        flush_counts(&[Op::Send(1), Op::RunForMs(5), Op::Run], BatchConfig::large());
    assert!(linger >= 1, "no linger-triggered flush");
    // View change: sends immediately followed by a reconfigure, with a
    // linger too long to fire first.
    let (_, _, vc) = flush_counts(&[Op::Send(1), Op::Reconfigure], long);
    assert!(vc >= 1, "no view-change-triggered flush");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Batch-boundary sweep: arbitrary count limits, byte budgets, and
    /// linger values must never reorder, drop, or duplicate a message in
    /// a stable view — checked both by the spec oracle (WV_RFIFO /
    /// VS_RFIFO / SELF run with `check: true`) and by direct per-channel
    /// sequence comparison against the send order.
    #[test]
    fn flush_boundaries_never_reorder_drop_or_duplicate(
        seed in 0u64..1000,
        max_msgs in 1u64..10,
        max_bytes in 1usize..256,
        linger_us in 0u64..2000,
        sends in prop::collection::vec(1u64..4, 1..24),
        pause_every in 1usize..8,
    ) {
        let n = 3u64;
        let batch = BatchConfig { max_msgs, max_bytes, linger_us };
        let mut sim = Sim::new_paper(
            n as usize,
            Config { batch, ..Config::default() },
            SimOptions { seed, latency: LatencyModel::lan(), check: true, shuffle_polling: true },
        );
        let all: ProcSet = (1..=n).map(ProcessId::new).collect();
        sim.reconfigure(&all);
        sim.run_to_quiescence();
        let mut sent: BTreeMap<ProcessId, Vec<AppMsg>> = BTreeMap::new();
        for (i, p) in sends.iter().enumerate() {
            let p = ProcessId::new(*p);
            let msg = AppMsg::from(format!("s{p:?}-{i}").as_str());
            sent.entry(p).or_default().push(msg.clone());
            sim.send(p, msg);
            if (i + 1) % pause_every == 0 {
                sim.run_for(SimTime::from_millis(1));
            }
        }
        sim.run_to_quiescence();
        sim.assert_paper_invariants();
        let violations = sim.finish();
        prop_assert!(violations.is_empty(), "{violations:?}");
        // Exactly one delivery per (message, group member) — self
        // included — in send order per channel.
        let mut channels: BTreeMap<(ProcessId, ProcessId), Vec<AppMsg>> = BTreeMap::new();
        for e in sim.trace().entries() {
            if let Event::Deliver { p, q, msg } = &e.event {
                channels.entry((*p, *q)).or_default().push(msg.clone());
            }
        }
        for r in 1..=n {
            let r = ProcessId::new(r);
            for (s, msgs) in &sent {
                let got = channels.get(&(r, *s)).cloned().unwrap_or_default();
                prop_assert_eq!(
                    &got, msgs,
                    "receiver {:?} / sender {:?}: delivered ≠ sent", r, s
                );
            }
        }
    }
}
