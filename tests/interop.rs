//! Mixed-configuration interoperability: a rolling upgrade deploys
//! optimizations one node at a time, so endpoints with different
//! [`Config`]s must cooperate in a single group without violating any
//! spec. Wire compatibility requirements:
//!
//! * slim sync messages (view-less) must be understood by plain peers
//!   (they simply exclude the sender from transitional sets);
//! * different forwarding strategies must co-exist (each node follows its
//!   own predicate; duplicates are idempotent by Invariant 6.6);
//! * implicit-cuts senders elide wire entries, but their *stream
//!   positions* remain meaningful to everyone — however agreement-side
//!   interpretation differs, so implicit cuts must be deployed
//!   group-wide; here we verify the safe combinations.

use std::collections::BTreeMap;
use vsgm_core::{Config, Endpoint, ForwardStrategyKind};
use vsgm_harness::sim::{procs, procs_of};
use vsgm_harness::{Sim, SimOptions};
use vsgm_spec::LivenessSpec;
use vsgm_types::{AppMsg, Event, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn mixed_sim(configs: Vec<Config>) -> Sim {
    let eps: BTreeMap<ProcessId, Endpoint> = configs
        .into_iter()
        .enumerate()
        .map(|(k, cfg)| {
            let pid = p(k as u64 + 1);
            (pid, Endpoint::new(pid, cfg))
        })
        .collect();
    Sim::with_endpoints(eps, SimOptions::default())
}

#[test]
fn slim_and_plain_endpoints_interoperate() {
    // p1, p2 run slim sync; p3, p4 plain.
    let slim = Config { slim_sync: true, ..Config::default() };
    let mut sim =
        mixed_sim(vec![slim.clone(), slim, Config::default(), Config::default()]);
    sim.reconfigure(&procs(2)); // bootstrap the slim pair first
    sim.run_to_quiescence();
    sim.send(p(1), AppMsg::from("pre-join"));
    sim.run_to_quiescence();
    // The plain pair joins: slim members send view-less syncs to them.
    let v = sim.reconfigure(&procs(4));
    sim.add_checker(LivenessSpec::new(v));
    for i in 1..=4 {
        sim.send(p(i), AppMsg::from(format!("mixed {i}").as_str()));
    }
    sim.run_to_quiescence();
    sim.assert_clean();
    sim.assert_paper_invariants();
    let delivered = sim
        .trace()
        .entries()
        .iter()
        .filter(|e| matches!(e.event, Event::Deliver { .. }))
        .count();
    assert!(delivered >= 16, "all post-join messages delivered everywhere");
}

#[test]
fn mixed_forwarding_strategies_recover_messages() {
    // p1 eager, p2 min-copy, p3 eager, p4 min-copy; p4's burst reaches
    // only p3 before p4 crashes.
    let eager = Config { forward: ForwardStrategyKind::Eager, ..Config::default() };
    let min = Config { forward: ForwardStrategyKind::MinCopy, ..Config::default() };
    let mut sim = mixed_sim(vec![eager.clone(), min.clone(), eager, min]);
    sim.reconfigure(&procs(4));
    sim.run_to_quiescence();
    sim.partition(&[vec![p(3), p(4)], vec![p(1), p(2)]]);
    for k in 0..3 {
        sim.send(p(4), AppMsg::from(format!("b{k}").as_str()));
    }
    sim.run_to_quiescence();
    sim.crash(p(4));
    sim.heal();
    let v = sim.reconfigure(&procs_of(&[1, 2, 3]));
    sim.add_checker(LivenessSpec::new(v));
    sim.run_to_quiescence();
    sim.assert_clean();
    // Every survivor delivered p4's full burst despite mixed strategies.
    for i in 1..=3u64 {
        let n = sim
            .trace()
            .entries()
            .iter()
            .filter(|e| matches!(&e.event, Event::Deliver { p: to, q: from, .. }
                                 if *to == p(i) && *from == p(4)))
            .count();
        assert_eq!(n, 3, "p{i} missing part of the burst");
    }
}

#[test]
fn gc_and_no_gc_endpoints_interoperate() {
    let keep = Config { gc_old_views: false, ..Config::default() };
    let mut sim = mixed_sim(vec![Config::default(), keep, Config::default()]);
    sim.reconfigure(&procs(3));
    for round in 2..=6u64 {
        sim.send(p(1 + round % 3), AppMsg::from(format!("r{round}").as_str()));
        sim.run_to_quiescence();
        sim.reconfigure(&procs(3));
        sim.run_to_quiescence();
    }
    sim.assert_clean();
    // The non-GC endpoint accumulated history; the GC ones stayed lean.
    assert!(sim.endpoint(p(2)).state().msgs.len() > sim.endpoint(p(1)).state().msgs.len());
}

#[test]
fn aggregating_group_with_plain_joiner_converges_on_next_change() {
    // An aggregation group admits a plain (non-aggregating) joiner. The
    // joiner multicasts its sync to everyone (flat), which the leader and
    // members absorb; the leader's batch covers the rest. Everyone
    // reaches the view.
    let agg = Config { aggregation: true, ..Config::default() };
    let mut sim = mixed_sim(vec![agg.clone(), agg.clone(), agg, Config::default()]);
    sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    let v = sim.reconfigure(&procs(4));
    sim.add_checker(LivenessSpec::new(v));
    sim.send(p(4), AppMsg::from("joiner traffic"));
    sim.run_to_quiescence();
    sim.assert_clean();
    for i in 1..=4 {
        assert_eq!(sim.endpoint(p(i)).current_view().len(), 4, "p{i} stuck");
    }
}
