//! End-to-end tests of the ordering layers (total + causal) running over
//! the full simulated stack, across view changes.

use std::collections::BTreeMap;
use vsgm_core::Config;
use vsgm_harness::sim::{procs, procs_of};
use vsgm_harness::{Sim, SimOptions};
use vsgm_order::{CausalOrder, TotalOrder};
use vsgm_types::{AppMsg, Event, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

/// Pumps GCS deliveries into per-process layers; `react` may return a
/// message to multicast (e.g. the sequencer's Order announcements).
fn pump<L>(
    sim: &mut Sim,
    layers: &mut BTreeMap<ProcessId, L>,
    cursor: &mut usize,
    mut react: impl FnMut(&mut L, ProcessId, &AppMsg) -> Option<AppMsg>,
) {
    loop {
        sim.run_to_quiescence();
        let batch: Vec<(ProcessId, ProcessId, AppMsg)> = sim.trace().entries()[*cursor..]
            .iter()
            .filter_map(|e| match &e.event {
                Event::Deliver { p, q, msg } => Some((*p, *q, msg.clone())),
                _ => None,
            })
            .collect();
        *cursor = sim.trace().len();
        if batch.is_empty() {
            return;
        }
        let mut sends = Vec::new();
        for (to, from, msg) in batch {
            if let Some(out) = react(layers.get_mut(&to).expect("known layer"), from, &msg) {
                sends.push((to, out));
            }
        }
        for (p, m) in sends {
            sim.send(p, m);
        }
    }
}

#[test]
fn total_order_identical_across_members_with_churn() {
    let mut sim = Sim::new_paper(4, Config::default(), SimOptions::default());
    let view = sim.reconfigure(&procs(4));
    sim.run_to_quiescence();
    let mut layers: BTreeMap<ProcessId, TotalOrder> = (1..=4)
        .map(|i| {
            let mut l = TotalOrder::new(p(i));
            l.on_view(&view, view.members());
            (p(i), l)
        })
        .collect();
    let mut delivered: BTreeMap<ProcessId, Vec<Vec<u8>>> = Default::default();
    let mut cursor = sim.trace().len();

    // Concurrent submissions from every member.
    for i in 1..=4u64 {
        for k in 0..3 {
            let wrapped = layers[&p(i)].submit(format!("{i}:{k}").into_bytes());
            sim.send(p(i), wrapped);
        }
    }
    // Drive the sequencer feedback loop: Order announcements are
    // re-multicast until the system quiesces.
    pump(&mut sim, &mut layers, &mut cursor, |layer, from, msg| {
        let (_, ann) = layer.on_deliver(from, msg);
        ann
    });
    // Simpler, exact check: replay the trace through fresh layers in
    // trace order per process and compare sequences.
    let mut check_layers: BTreeMap<ProcessId, TotalOrder> = (1..=4)
        .map(|i| {
            let mut l = TotalOrder::new(p(i));
            l.on_view(&view, view.members());
            (p(i), l)
        })
        .collect();
    for e in sim.trace().entries() {
        if let Event::Deliver { p: to, q: from, msg } = &e.event {
            let (out, _) = check_layers.get_mut(to).unwrap().on_deliver(*from, msg);
            for o in out {
                delivered.entry(*to).or_default().push(o.payload);
            }
        }
    }
    sim.assert_clean();
    let reference = delivered[&p(1)].clone();
    assert_eq!(reference.len(), 12, "all 12 payloads ordered");
    for i in 2..=4 {
        assert_eq!(delivered[&p(i)], reference, "member p{i} diverged");
    }
}

#[test]
fn causal_order_respects_happened_before_over_the_stack() {
    let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
    let view = sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    let mut layers: BTreeMap<ProcessId, CausalOrder> =
        (1..=3).map(|i| (p(i), CausalOrder::new(p(i)))).collect();
    let _ = view;
    let mut cursor = sim.trace().len();
    let mut log: BTreeMap<ProcessId, Vec<Vec<u8>>> = Default::default();

    // p1 sends the cause.
    let m1 = layers[&p(1)].submit(b"cause".to_vec());
    sim.send(p(1), m1);
    pump(&mut sim, &mut layers, &mut cursor, |layer, from, msg| {
        for d in layer.on_deliver(from, msg) {
            let _ = d;
        }
        None
    });
    // Replay to drive the real layers (pump consumed deliveries already):
    // rebuild precisely from the trace for the assertion phase below.
    // p2 reacts with the effect (its layer saw the cause during pump).
    let mut p2_layer = CausalOrder::new(p(2));
    for e in sim.trace().entries() {
        if let Event::Deliver { p: to, q: from, msg } = &e.event {
            if *to == p(2) {
                p2_layer.on_deliver(*from, msg);
            }
        }
    }
    let m2 = p2_layer.submit(b"effect".to_vec());
    sim.send(p(2), m2);
    sim.run_to_quiescence();
    sim.assert_clean();

    // Replay the complete trace through fresh layers: at every member,
    // "cause" must precede "effect".
    let mut fresh: BTreeMap<ProcessId, CausalOrder> =
        (1..=3).map(|i| (p(i), CausalOrder::new(p(i)))).collect();
    for e in sim.trace().entries() {
        if let Event::Deliver { p: to, q: from, msg } = &e.event {
            for d in fresh.get_mut(to).unwrap().on_deliver(*from, msg) {
                log.entry(*to).or_default().push(d.payload);
            }
        }
    }
    for i in 1..=3u64 {
        let seq = &log[&p(i)];
        let cause = seq.iter().position(|m| m == b"cause").expect("cause delivered");
        let effect = seq.iter().position(|m| m == b"effect").expect("effect delivered");
        assert!(cause < effect, "p{i} delivered effect before cause: {seq:?}");
    }
}

#[test]
fn total_order_survives_sequencer_departure() {
    let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
    let v1 = sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    let layers: BTreeMap<ProcessId, TotalOrder> = (1..=3)
        .map(|i| {
            let mut l = TotalOrder::new(p(i));
            l.on_view(&v1, v1.members());
            (p(i), l)
        })
        .collect();
    assert!(layers[&p(1)].is_sequencer());

    // Submissions land, then the sequencer p1 crashes before ordering
    // everything; {2,3} reconfigure.
    let w2 = layers[&p(2)].submit(b"two".to_vec());
    let w3 = layers[&p(3)].submit(b"three".to_vec());
    sim.send(p(2), w2);
    sim.send(p(3), w3);
    sim.run_to_quiescence();
    sim.crash(p(1));
    let v2 = sim.reconfigure(&procs_of(&[2, 3]));
    sim.run_to_quiescence();
    sim.assert_clean();

    // Replay: both survivors flush the identical backlog on the view.
    let mut flushed: BTreeMap<ProcessId, Vec<Vec<u8>>> = Default::default();
    for i in [2u64, 3] {
        let mut l = TotalOrder::new(p(i));
        l.on_view(&v1, v1.members());
        for e in sim.trace().entries() {
            match &e.event {
                Event::Deliver { p: to, q: from, msg } if *to == p(i) => {
                    let (out, _) = l.on_deliver(*from, msg);
                    for o in out {
                        flushed.entry(p(i)).or_default().push(o.payload);
                    }
                }
                Event::GcsView { p: to, view, transitional } if *to == p(i) && view == &v2 => {
                    for o in l.on_view(view, transitional) {
                        flushed.entry(p(i)).or_default().push(o.payload);
                    }
                }
                _ => {}
            }
        }
        assert!(l.is_sequencer() || p(i) != p(2), "p2 becomes the new sequencer");
    }
    assert_eq!(flushed[&p(2)], flushed[&p(3)], "VS flush must agree");
    assert_eq!(flushed[&p(2)].len(), 2);
}

#[test]
fn replica_layer_syncs_rejoiner_over_the_full_stack() {
    use vsgm_order::{LogMachine, Replica};

    let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
    let mut replicas: BTreeMap<ProcessId, Replica<LogMachine>> =
        (1..=3).map(|i| (p(i), Replica::new(p(i), LogMachine::default()))).collect();
    let mut cursor = 0usize;

    // Drives deliveries + view changes from the trace into the replicas,
    // re-multicasting their responses, until quiescence.
    fn pump_replicas(
        sim: &mut Sim,
        replicas: &mut BTreeMap<ProcessId, Replica<LogMachine>>,
        cursor: &mut usize,
    ) {
        loop {
            sim.run_to_quiescence();
            let batch: Vec<Event> = sim.trace().entries()[*cursor..]
                .iter()
                .map(|e| e.event.clone())
                .collect();
            *cursor = sim.trace().len();
            if batch.is_empty() {
                return;
            }
            let mut sends = Vec::new();
            for ev in batch {
                match ev {
                    Event::Deliver { p: to, q: from, msg } => {
                        if let Some(r) = replicas.get_mut(&to) {
                            if let Some(resp) = r.on_deliver(from, &msg) {
                                sends.push((to, resp));
                            }
                        }
                    }
                    Event::GcsView { p: to, view, transitional } => {
                        if let Some(r) = replicas.get_mut(&to) {
                            if let Some(resp) = r.on_view(&view, &transitional) {
                                sends.push((to, resp));
                            }
                        }
                    }
                    _ => {}
                }
            }
            for (from, m) in sends {
                sim.send(from, m);
            }
        }
    }

    sim.reconfigure(&procs(3));
    pump_replicas(&mut sim, &mut replicas, &mut cursor);
    for (i, cmd) in [(1u64, "alpha"), (2, "beta"), (3, "gamma")] {
        let m = replicas[&p(i)].submit(cmd.as_bytes().to_vec());
        sim.send(p(i), m);
    }
    pump_replicas(&mut sim, &mut replicas, &mut cursor);
    let reference = replicas[&p(1)].machine().clone();
    assert_eq!(reference.log.len(), 3);
    for (id, r) in &replicas {
        assert_eq!(r.machine(), &reference, "replica {id} diverged");
    }

    // p3 crashes (loses everything), survivors keep writing, p3 rejoins
    // and is brought up to date by the transitional-set donor.
    sim.crash(p(3));
    replicas.insert(p(3), Replica::new(p(3), LogMachine::default()));
    sim.reconfigure(&procs_of(&[1, 2]));
    pump_replicas(&mut sim, &mut replicas, &mut cursor);
    let m = replicas[&p(1)].submit(b"while p3 down".to_vec());
    sim.send(p(1), m);
    pump_replicas(&mut sim, &mut replicas, &mut cursor);
    sim.recover(p(3));
    sim.reconfigure(&procs(3));
    pump_replicas(&mut sim, &mut replicas, &mut cursor);

    sim.assert_clean();
    let reference = replicas[&p(1)].machine().clone();
    assert_eq!(reference.log.len(), 4);
    assert_eq!(
        replicas[&p(3)].machine(),
        &reference,
        "rejoiner must match via snapshot transfer"
    );
}
