//! Executable refinement mapping (Lemma 6.1 / 6.2): the paper proves the
//! algorithm correct by mapping each concrete end-point state to a state
//! of the abstract specification automaton. This test computes that
//! mapping `R()` on live end-point states during simulated runs and
//! checks it against the abstract state independently reconstructed from
//! the external trace — if the algorithm's internal bookkeeping ever
//! diverged from what the spec's state "should" be, the mapping breaks.
//!
//! Columns of `R()` checked (Lemma 6.1):
//!   `msgs[p][v]`          = s[p].msgs[p][v]        (own sent messages)
//!   `last_dlvrd[p][q]`    = s[q].last_dlvrd[p]     (delivery counters)
//!   `current_view[p]`     = s[p].current_view
//! plus the `H_cut` extension of Lemma 6.2 via the VS checker's recorded
//! cuts.

use std::collections::HashMap;
use vsgm_core::Config;
use vsgm_harness::sim::{procs, procs_of};
use vsgm_harness::{Sim, SimOptions};
use vsgm_types::{AppMsg, Event, ProcessId, View};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

/// Abstract `WV_RFIFO:SPEC` state reconstructed from the external trace.
#[derive(Default)]
struct AbstractState {
    /// `msgs[p][v]`: messages sent by `p` in view `v`.
    msgs: HashMap<(ProcessId, View), Vec<AppMsg>>,
    /// `last_dlvrd[p][q]`: messages from `p` delivered to `q` (current
    /// view of `q`).
    last_dlvrd: HashMap<(ProcessId, ProcessId), u64>,
    /// `current_view[p]`.
    current_view: HashMap<ProcessId, View>,
}

impl AbstractState {
    fn apply(&mut self, event: &Event) {
        match event {
            Event::Send { p, msg } => {
                let v = self.view_of(*p);
                self.msgs.entry((*p, v)).or_default().push(msg.clone());
            }
            Event::Deliver { p: q, q: sender, .. } => {
                *self.last_dlvrd.entry((*sender, *q)).or_insert(0) += 1;
            }
            Event::GcsView { p, view, .. } => {
                self.current_view.insert(*p, view.clone());
                self.last_dlvrd.retain(|(_, q), _| q != p);
            }
            _ => {}
        }
    }

    fn view_of(&self, q: ProcessId) -> View {
        self.current_view.get(&q).cloned().unwrap_or_else(|| View::initial(q))
    }
}

/// Checks `R(concrete) == abstract` for every end-point.
fn check_refinement(sim: &Sim, abs: &AbstractState) {
    for i in sim.all_procs() {
        let ep = sim.endpoint(i);
        if ep.is_crashed() {
            continue;
        }
        let st = ep.state();
        // current_view[p] column.
        assert_eq!(
            st.current_view,
            abs.view_of(i),
            "R(current_view) broken at {i}"
        );
        // msgs[p][v] column for the CURRENT view (older views may be
        // garbage-collected concretely, which the refinement permits — the
        // spec state is a superset).
        let abs_msgs =
            abs.msgs.get(&(i, st.current_view.clone())).cloned().unwrap_or_default();
        let concrete = st.buf(i, &st.current_view);
        let concrete_len = concrete.map_or(0, |b| b.last_index());
        assert_eq!(
            concrete_len,
            abs_msgs.len() as u64,
            "R(msgs[{i}][current]) length broken"
        );
        for (k, m) in abs_msgs.iter().enumerate() {
            assert_eq!(
                concrete.and_then(|b| b.get(k as u64 + 1)),
                Some(m),
                "R(msgs[{i}][current])[{k}] broken"
            );
        }
        // last_dlvrd[q][p] column.
        for q in sim.all_procs() {
            let abs_count = abs.last_dlvrd.get(&(q, i)).copied().unwrap_or(0);
            assert_eq!(
                st.dlvrd(q),
                abs_count,
                "R(last_dlvrd[{q}][{i}]) broken"
            );
        }
    }
}

fn run_with_refinement_checks(seed: u64) {
    let mut sim = Sim::new_paper(
        4,
        Config::default(),
        SimOptions { seed, ..SimOptions::default() },
    );
    let mut abs = AbstractState::default();
    let mut cursor = 0usize;
    let sync = |sim: &mut Sim, abs: &mut AbstractState, cursor: &mut usize| {
        sim.run_to_quiescence();
        for e in &sim.trace().entries()[*cursor..] {
            abs.apply(&e.event);
        }
        *cursor = sim.trace().len();
        check_refinement(sim, abs);
    };

    sim.reconfigure(&procs(4));
    sync(&mut sim, &mut abs, &mut cursor);
    for i in 1..=4 {
        sim.send(p(i), AppMsg::from(format!("a{i}").as_str()));
    }
    sync(&mut sim, &mut abs, &mut cursor);
    sim.reconfigure(&procs_of(&[1, 2, 3]));
    sync(&mut sim, &mut abs, &mut cursor);
    sim.send(p(2), AppMsg::from("small world"));
    sync(&mut sim, &mut abs, &mut cursor);
    sim.reconfigure(&procs(4));
    sync(&mut sim, &mut abs, &mut cursor);
    sim.assert_clean();
}

#[test]
fn refinement_mapping_holds_across_reconfigurations() {
    for seed in 0..12 {
        run_with_refinement_checks(seed);
    }
}

#[test]
fn refinement_mapping_holds_under_partition_and_crash() {
    let mut sim = Sim::new_paper(4, Config::default(), SimOptions::default());
    let mut abs = AbstractState::default();
    let mut cursor = 0usize;
    let sync = |sim: &mut Sim, abs: &mut AbstractState, cursor: &mut usize| {
        sim.run_to_quiescence();
        for e in &sim.trace().entries()[*cursor..] {
            abs.apply(&e.event);
        }
        *cursor = sim.trace().len();
        check_refinement(sim, abs);
    };
    sim.reconfigure(&procs(4));
    sync(&mut sim, &mut abs, &mut cursor);
    sim.partition(&[vec![p(1), p(2)], vec![p(3), p(4)]]);
    sim.send(p(3), AppMsg::from("island"));
    sync(&mut sim, &mut abs, &mut cursor);
    sim.crash(p(4));
    sim.heal();
    sim.reconfigure(&procs_of(&[1, 2, 3]));
    sync(&mut sim, &mut abs, &mut cursor);
    // The recovered process restarts the mapping from a fresh incarnation.
    sim.recover(p(4));
    abs.current_view.insert(p(4), View::initial(p(4)));
    abs.last_dlvrd.retain(|(_, q), _| *q != p(4));
    abs.msgs.retain(|(s, _), _| *s != p(4));
    sim.reconfigure(&procs(4));
    sync(&mut sim, &mut abs, &mut cursor);
    sim.assert_clean();
}
