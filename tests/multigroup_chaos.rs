//! Group-isolation chaos regression: faults injected into ONE hosted
//! group must leave its shard-mates completely undisturbed.
//!
//! Setup mirrors the worst case for isolation — three groups forced onto
//! the *same* shard worker (gids 2, 4, 6 on a 2-shard pool), so any
//! state bleed between instances sharing a thread shows up immediately.
//! The middle group (gid 4) takes the faults; gids 2 and 6 run the same
//! clean schedule throughout, and their traces are compared byte for
//! byte against isolated fault-free reference runs:
//!
//! * within-envelope faults (crash/recover churn, partition/heal, a
//!   lossy [`FaultPlan`]) keep every group's checkers green and the
//!   shard-mates byte-identical;
//! * the pinned leak scenario injects a state *corruption* — which by
//!   design exceeds the spec envelope for the corrupted group — and
//!   pins that the shard-mates' traces, checker verdicts, and fault
//!   counters (`fault_injections == 0`, `corruptions == 0`) are all
//!   untouched. The faulted group alone reports the corruption.

use std::collections::BTreeMap;
use vsgm_core::CorruptionKind;
use vsgm_net::FaultPlan;
use vsgm_server::{group_seed, GroupCmd, GroupInstance, GroupReport, ShardConfig, ShardPool};
use vsgm_types::{AppMsg, GroupId, ProcessId};

const BASE_SEED: u64 = 0xC4A0_5111;
const CAPACITY: u64 = 3;

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

/// The clean schedule every group runs (the faulted group interleaves
/// its fault commands between these).
fn clean_schedule(gid: GroupId) -> Vec<GroupCmd> {
    let tag = gid.raw();
    vec![
        GroupCmd::Join(p(1)),
        GroupCmd::Join(p(2)),
        GroupCmd::Join(p(3)),
        GroupCmd::Send { from: p(1), msg: AppMsg::from(format!("g{tag}-a").as_str()) },
        GroupCmd::Send { from: p(2), msg: AppMsg::from(format!("g{tag}-b").as_str()) },
        GroupCmd::RunForMs(3),
        GroupCmd::Send { from: p(3), msg: AppMsg::from(format!("g{tag}-c").as_str()) },
        GroupCmd::Run,
    ]
}

/// Runs one group alone (no faults) and returns its trace and report.
fn isolated_reference(gid: GroupId) -> (String, GroupReport) {
    let mut g = GroupInstance::new(gid, CAPACITY, group_seed(BASE_SEED, gid));
    for cmd in clean_schedule(gid) {
        g.apply(cmd);
    }
    g.run_to_quiescence();
    assert!(g.finish().is_empty(), "reference {gid} must be clean");
    (g.trace_json(), g.report())
}

/// What one trio run produced: the shard-mates' observations plus the
/// faulted group's verdict and report.
struct TrioOutcome {
    /// gid → (trace, report) for the two clean shard-mates.
    mates: BTreeMap<GroupId, (String, GroupReport)>,
    /// Debug rendering of gid 4's checker verdict (`"[]"` when green).
    faulted_verdict: String,
    faulted_report: GroupReport,
}

/// Spawns the same-shard trio, round-robins the clean schedules, and
/// splices `faults` into the middle group (gid 4) at step boundaries.
fn run_trio_with_faults(faults: &[(usize, GroupCmd)]) -> TrioOutcome {
    let gids = [GroupId::new(2), GroupId::new(4), GroupId::new(6)];
    let pool = ShardPool::spawn(ShardConfig { shards: 2, auto_run: false, outputs: None });
    for gid in &gids {
        assert_eq!(pool.shard_of(*gid), 0, "trio must share one shard worker");
        pool.create_group(*gid, CAPACITY, group_seed(BASE_SEED, *gid));
    }
    let schedules: BTreeMap<GroupId, Vec<GroupCmd>> =
        gids.iter().map(|g| (*g, clean_schedule(*g))).collect();
    let steps = schedules[&gids[0]].len();
    for step in 0..steps {
        for gid in &gids {
            for (at, cmd) in faults {
                if *at == step && *gid == GroupId::new(4) {
                    pool.apply(*gid, cmd.clone());
                }
            }
            pool.apply(*gid, schedules[gid][step].clone());
        }
    }
    let mut mates = BTreeMap::new();
    for gid in &gids {
        pool.apply(*gid, GroupCmd::Run);
    }
    for gid in [GroupId::new(2), GroupId::new(6)] {
        let trace = pool.trace_json(gid).expect("hosted trace");
        let report = pool.report(gid).expect("hosted report");
        // Shard-mate checkers must be green regardless of what happened
        // to gid 4 (callers judge gid 4 themselves).
        assert_eq!(pool.finish(gid), Some(vec![]), "shard-mate {gid} checkers disturbed");
        mates.insert(gid, (trace, report));
    }
    let faulted = GroupId::new(4);
    let faulted_verdict = format!("{:?}", pool.finish(faulted).expect("gid 4 hosted"));
    let faulted_report = pool.report(faulted).expect("gid 4 report");
    pool.shutdown();
    TrioOutcome { mates, faulted_verdict, faulted_report }
}

/// Shard-mates must match their isolated fault-free references exactly.
fn assert_mates_undisturbed(out: &TrioOutcome) {
    for gid in [GroupId::new(2), GroupId::new(6)] {
        let (ref_trace, ref_report) = isolated_reference(gid);
        let (hosted_trace, hosted_report) = &out.mates[&gid];
        assert_eq!(
            hosted_trace, &ref_trace,
            "{gid}: shard-mate trace disturbed by a fault in gid 4"
        );
        assert_eq!(hosted_report, &ref_report, "{gid}: shard-mate report disturbed");
        assert_eq!(hosted_report.fault_injections, 0, "{gid}: leaked fault injections");
        assert_eq!(hosted_report.corruptions, 0, "{gid}: leaked corruptions");
    }
}

#[test]
fn within_envelope_faults_stay_inside_their_group() {
    // Crash/recover churn with the matching membership changes, plus a
    // lossy-but-legal fault plan installed and later cleared — all into
    // gid 4 only. Every group, including the faulted one, must end
    // checker-green; the shard-mates must be byte-identical to their
    // isolated references.
    let faults = vec![
        (3, GroupCmd::Faults(FaultPlan { drop: 0.3, ..FaultPlan::none() })),
        (5, GroupCmd::Crash(p(3))),
        (5, GroupCmd::Leave(p(3))),
        (6, GroupCmd::Faults(FaultPlan::none())),
        (6, GroupCmd::Recover(p(3))),
        (6, GroupCmd::Join(p(3))),
        (7, GroupCmd::Run),
    ];
    let out = run_trio_with_faults(&faults);
    assert_mates_undisturbed(&out);
    assert_eq!(out.faulted_verdict, "[]", "within-envelope faults must stay checker-green");
    assert_eq!(out.faulted_report.corruptions, 0);
}

#[test]
fn partition_and_heal_stay_inside_their_group() {
    let faults = vec![
        (4, GroupCmd::Partition(vec![vec![p(1), p(2)], vec![p(3)]])),
        (5, GroupCmd::RunForMs(2)),
        (6, GroupCmd::Heal),
        (7, GroupCmd::Run),
    ];
    let out = run_trio_with_faults(&faults);
    assert_mates_undisturbed(&out);
    assert_eq!(out.faulted_verdict, "[]", "loss from a healed partition is within the envelope");
}

/// The pinned cross-group leak scenario: a state corruption in gid 4 —
/// deliberately outside the spec envelope for that group — must not
/// move a single byte, counter, or checker verdict in its shard-mates.
/// This is the regression a shared-state multiplexer bug would trip
/// first (shared RNG, shared audit cadence, shared checker state).
#[test]
fn pinned_corruption_does_not_leak_to_shard_mates() {
    let faults = vec![
        (4, GroupCmd::Corrupt { p: p(2), kind: CorruptionKind::ForgeMsgId }),
        (6, GroupCmd::Run),
    ];
    let out = run_trio_with_faults(&faults);
    assert_mates_undisturbed(&out);
    assert_eq!(out.faulted_report.corruptions, 1, "the corruption landed in gid 4");
}
