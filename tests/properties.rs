//! Property-based testing: random scenarios (workload, reconfigurations,
//! partitions, crashes, recoveries) with the specification checkers as
//! the oracle — the executable counterpart of the paper's proofs, applied
//! to adversarially generated executions.

use proptest::prelude::*;
use vsgm_core::{Config, ForwardStrategyKind};
use vsgm_harness::{Sim, SimOptions};
use vsgm_net::LatencyModel;
use vsgm_types::{AppMsg, ProcSet, ProcessId};

const N: u64 = 4;

/// One scenario operation.
#[derive(Debug, Clone)]
enum Op {
    /// Application send from process `1 + (i % N)`.
    Send(u64),
    /// Full reconfiguration among the currently alive processes listed in
    /// the bitmask (non-empty intersections only).
    Reconfigure(u8),
    /// Issue a start_change without the view (cascade fodder).
    StartChangeOnly(u8),
    /// Partition at the given split point (1..N).
    Partition(u64),
    /// Heal all partitions.
    Heal,
    /// Crash process `1 + (i % N)` if alive.
    Crash(u64),
    /// Recover one crashed process (if any).
    RecoverOne,
    /// Let the network make progress.
    Run,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u64>().prop_map(Op::Send),
        3 => any::<u8>().prop_map(Op::Reconfigure),
        1 => any::<u8>().prop_map(Op::StartChangeOnly),
        1 => (1..N).prop_map(Op::Partition),
        1 => Just(Op::Heal),
        1 => any::<u64>().prop_map(Op::Crash),
        1 => Just(Op::RecoverOne),
        3 => Just(Op::Run),
    ]
}

fn mask_to_set(mask: u8, alive: &ProcSet) -> ProcSet {
    let chosen: ProcSet = (0..N)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| ProcessId::new(i + 1))
        .collect();
    chosen.intersection(alive).copied().collect()
}

fn run_scenario(seed: u64, ops: &[Op], forward: ForwardStrategyKind) {
    run_scenario_with(seed, ops, Config { forward, ..Config::default() })
}

fn run_scenario_with(seed: u64, ops: &[Op], cfg: Config) {
    let mut sim = Sim::new_paper(
        N as usize,
        cfg,
        SimOptions { seed, latency: LatencyModel::lan(), check: true, shuffle_polling: true },
    );
    let mut alive: ProcSet = (1..=N).map(ProcessId::new).collect();
    let mut crashed: Vec<ProcessId> = Vec::new();
    let mut msg_no = 0u64;
    // A start_change must precede the first view; begin sanely.
    sim.reconfigure(&alive);

    for op in ops {
        match op {
            Op::Send(i) => {
                let p = ProcessId::new(1 + (i % N));
                if alive.contains(&p) {
                    msg_no += 1;
                    sim.send(p, AppMsg::from(format!("m{msg_no}").as_str()));
                }
            }
            Op::Reconfigure(mask) => {
                let members = mask_to_set(*mask, &alive);
                if !members.is_empty() {
                    sim.reconfigure(&members);
                }
            }
            Op::StartChangeOnly(mask) => {
                let members = mask_to_set(*mask, &alive);
                if !members.is_empty() {
                    sim.start_change(&members);
                }
            }
            Op::Partition(split) => {
                let a: Vec<ProcessId> = (1..=*split).map(ProcessId::new).collect();
                let b: Vec<ProcessId> = (*split + 1..=N).map(ProcessId::new).collect();
                sim.partition(&[a, b]);
            }
            Op::Heal => sim.heal(),
            Op::Crash(i) => {
                let p = ProcessId::new(1 + (i % N));
                if alive.contains(&p) && alive.len() > 1 {
                    sim.crash(p);
                    alive.remove(&p);
                    crashed.push(p);
                }
            }
            Op::RecoverOne => {
                if let Some(p) = crashed.pop() {
                    sim.recover(p);
                    alive.insert(p);
                }
            }
            Op::Run => sim.run_to_quiescence(),
        }
    }
    sim.run_to_quiescence();
    let violations = sim.finish();
    assert!(violations.is_empty(), "seed {seed}: {violations:?}\nops: {ops:?}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_scenarios_satisfy_all_safety_specs_eager(
        seed in 0u64..1000,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        run_scenario(seed, &ops, ForwardStrategyKind::Eager);
    }

    #[test]
    fn random_scenarios_satisfy_all_safety_specs_min_copy(
        seed in 0u64..1000,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        run_scenario(seed, &ops, ForwardStrategyKind::MinCopy);
    }

    #[test]
    fn random_scenarios_satisfy_all_safety_specs_optimized(
        seed in 0u64..1000,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        // Both §5.2.4 optimizations on: safety must be untouched.
        run_scenario_with(seed, &ops, Config::optimized());
    }

    #[test]
    fn random_schedules_keep_fifo_per_sender(
        seed in 0u64..1000,
        burst in 1usize..20,
    ) {
        // FIFO end-to-end under jitter: sender p1, receivers everyone.
        let mut sim = Sim::new_paper(
            3,
            Config::default(),
            SimOptions { seed, latency: LatencyModel::lan(), check: true, shuffle_polling: true },
        );
        let members: ProcSet = (1..=3).map(ProcessId::new).collect();
        sim.reconfigure(&members);
        for k in 0..burst {
            sim.send(ProcessId::new(1), AppMsg::from(format!("{k}").as_str()));
        }
        sim.run_to_quiescence();
        sim.assert_clean();
        // Every receiver got the burst in order (the WV checker enforces
        // this; double-check counts here).
        let delivered = sim
            .trace()
            .entries()
            .iter()
            .filter(|e| matches!(e.event, vsgm_types::Event::Deliver { .. }))
            .count();
        prop_assert_eq!(delivered, burst * 3);
    }
}

// Baseline sanity under random-but-clean scenarios (no cascades or
// partitions — the scope the baseline is faithful in).
proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn baseline_clean_reconfigurations(
        seed in 0u64..1000,
        masks in prop::collection::vec(1u8..16, 1..6),
        sends in 0usize..8,
    ) {
        let mut sim = Sim::new_baseline(
            N as usize,
            SimOptions { seed, latency: LatencyModel::lan(), check: true, shuffle_polling: true },
        );
        let all: ProcSet = (1..=N).map(ProcessId::new).collect();
        sim.reconfigure(&all);
        sim.run_to_quiescence();
        for k in 0..sends {
            sim.send(ProcessId::new(1 + (k as u64 % N)), AppMsg::from(format!("{k}").as_str()));
        }
        sim.run_to_quiescence();
        for mask in masks {
            let members = mask_to_set(mask, &all);
            if members.is_empty() { continue; }
            sim.reconfigure(&members);
            sim.run_to_quiescence();
        }
        sim.assert_clean();
    }
}

/// Long soak: a large randomized scenario, run explicitly with
/// `cargo test -p vsgm-integration --test properties -- --ignored`.
#[test]
#[ignore = "long-running soak; run explicitly"]
fn soak_500_ops_many_seeds() {
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    for seed in 0..20 {
        let mut runner = TestRunner::deterministic();
        let ops = prop::collection::vec(op_strategy(), 200..500)
            .new_tree(&mut runner)
            .unwrap()
            .current();
        run_scenario(seed, &ops, ForwardStrategyKind::Eager);
        run_scenario(seed, &ops, ForwardStrategyKind::MinCopy);
    }
}
