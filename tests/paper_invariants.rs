//! Mechanical audit of the paper's proof invariants (§6–§7): assert every
//! numbered invariant on *every reachable global state* of simulated
//! executions — after each network-delivery step, not just at the end.

use proptest::prelude::*;
use vsgm_core::{Config, ForwardStrategyKind};
use vsgm_harness::sim::{procs, procs_of};
use vsgm_harness::{Sim, SimOptions};
use vsgm_types::{AppMsg, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

/// Runs to quiescence, asserting the invariants after every delivery
/// batch (i.e. in every distinct reachable quiescent-per-step state).
fn run_checked(sim: &mut Sim) {
    sim.assert_paper_invariants();
    loop {
        if !sim.deliver_next() {
            return;
        }
        sim.assert_paper_invariants();
    }
}

#[test]
fn invariants_hold_through_clean_reconfigurations() {
    for seed in 0..10 {
        let mut sim =
            Sim::new_paper(4, Config::default(), SimOptions { seed, ..Default::default() });
        sim.reconfigure(&procs(4));
        run_checked(&mut sim);
        for i in 1..=4 {
            sim.send(p(i), AppMsg::from(format!("{i}").as_str()));
        }
        run_checked(&mut sim);
        sim.reconfigure(&procs_of(&[1, 2]));
        run_checked(&mut sim);
        sim.assert_clean();
    }
}

#[test]
fn invariants_hold_through_partitions_and_crashes() {
    for seed in 0..6 {
        let mut sim =
            Sim::new_paper(4, Config::default(), SimOptions { seed, ..Default::default() });
        sim.reconfigure(&procs(4));
        run_checked(&mut sim);
        sim.partition(&[vec![p(1), p(2)], vec![p(3), p(4)]]);
        sim.send(p(3), AppMsg::from("b-side"));
        run_checked(&mut sim);
        sim.crash(p(4));
        sim.heal();
        sim.reconfigure(&procs_of(&[1, 2, 3]));
        run_checked(&mut sim);
        sim.recover(p(4));
        sim.reconfigure(&procs(4));
        run_checked(&mut sim);
        sim.assert_clean();
    }
}

#[test]
fn invariants_hold_through_cascades() {
    let mut sim = Sim::new_paper(3, Config::default(), SimOptions::default());
    sim.reconfigure(&procs(3));
    run_checked(&mut sim);
    sim.start_change(&procs(3));
    run_checked(&mut sim);
    sim.start_change(&procs(2));
    run_checked(&mut sim);
    sim.start_change(&procs(3));
    run_checked(&mut sim);
    sim.form_view(&procs(3));
    run_checked(&mut sim);
    sim.assert_clean();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn invariants_hold_under_random_scenarios(
        seed in 0u64..500,
        sends in prop::collection::vec(0u64..4, 0..10),
        shrink_mask in 1u8..15,
        use_min_copy in any::<bool>(),
    ) {
        let forward = if use_min_copy {
            ForwardStrategyKind::MinCopy
        } else {
            ForwardStrategyKind::Eager
        };
        let cfg = Config { forward, ..Config::default() };
        let mut sim = Sim::new_paper(4, cfg, SimOptions { seed, ..Default::default() });
        sim.reconfigure(&procs(4));
        run_checked(&mut sim);
        for s in &sends {
            sim.send(p(1 + s % 4), AppMsg::from("w"));
        }
        run_checked(&mut sim);
        let members: Vec<u64> =
            (0..4u64).filter(|i| shrink_mask & (1 << i) != 0).map(|i| i + 1).collect();
        sim.reconfigure(&procs_of(&members));
        run_checked(&mut sim);
        sim.reconfigure(&procs(4));
        run_checked(&mut sim);
        sim.assert_clean();
    }
}
