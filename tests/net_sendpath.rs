//! Regression tests for the TCP multicast send path.
//!
//! Each test pins one of the send-path bugs the per-connection-writer
//! rebuild fixed; all of them fail against the pre-rebuild transport:
//!
//! 1. **Fail-fast fan-out** — `send` used to return on the first broken
//!    peer, silently skipping the rest of the `ProcSet`.
//! 2. **Torn frames** — heartbeats were written on `try_clone()`d streams
//!    concurrently with data `write_all`s, so a heartbeat could land in
//!    the middle of a data frame and poison the stream framing.
//! 3. **Connect races** — two threads racing the first send to a peer
//!    both connected and handshook, and the second map insert evicted a
//!    live socket.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::Barrier;
use std::time::{Duration, Instant};
use vsgm_net::{TcpConfig, TcpTransport, Transport};
use vsgm_types::{AppMsg, NetMsg, ProcSet, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

/// Bug 1: a multicast with one dead destination must still reach every
/// live destination, and the error must name the peer that failed.
#[test]
fn multicast_survives_a_dead_peer() {
    // p2's address was live once (a listener existed) but the process is
    // gone; p3 and p4 are healthy.
    let gone = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = gone.local_addr().unwrap();
    drop(gone);

    let a = TcpTransport::bind_with(
        p(1),
        "127.0.0.1:0",
        TcpConfig {
            max_reconnect_attempts: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..TcpConfig::default()
        },
    )
    .unwrap();
    let c = TcpTransport::bind(p(3), "127.0.0.1:0").unwrap();
    let d = TcpTransport::bind(p(4), "127.0.0.1:0").unwrap();
    a.register_peer(p(2), dead_addr);
    a.register_peer(p(3), c.local_addr());
    a.register_peer(p(4), d.local_addr());

    // BTreeSet order puts the dead p2 first: pre-rebuild, the fan-out
    // aborted there and neither p3 nor p4 ever saw the frame.
    let to: ProcSet = [p(2), p(3), p(4)].into_iter().collect();
    let err = a.send(&to, &NetMsg::App(AppMsg::from("everyone"))).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("p2"), "error should name the dead peer: {text}");
    assert!(text.contains("2/3"), "error should count reached peers: {text}");

    for peer in [&c, &d] {
        let (from, msg) =
            peer.recv_timeout(Duration::from_secs(5)).expect("live peer must still receive");
        assert_eq!(from, p(1));
        assert_eq!(msg, NetMsg::App(AppMsg::from("everyone")));
    }
}

/// Bug 2: concurrent senders plus an aggressive heartbeat prober must
/// never tear a frame. A torn frame desyncs the receiver's framing and
/// kills the reader, so the missing-message count below is the detector.
#[test]
fn concurrent_sends_and_heartbeats_never_tear_frames() {
    const THREADS: u64 = 2;
    const PER_THREAD: u64 = 5_000;

    let config = TcpConfig {
        // Heartbeat every millisecond: pre-rebuild these raced the data
        // write_alls on a cloned stream and tore frames mid-burst.
        heartbeat_interval: Duration::from_millis(1),
        suspect_after: Duration::from_secs(30),
        writer_queue: 4096,
        enqueue_timeout: Duration::from_secs(30),
        ..TcpConfig::default()
    };
    let a = TcpTransport::bind_with(p(1), "127.0.0.1:0", config.clone()).unwrap();
    let b = TcpTransport::bind_with(p(2), "127.0.0.1:0", config).unwrap();
    a.register_peer(p(2), b.local_addr());
    b.register_peer(p(1), a.local_addr());
    let to: ProcSet = [p(2)].into_iter().collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let a = &a;
            let to = &to;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Every 50th frame is large (256 KiB) so a concurrent
                    // heartbeat has a wide window to land inside it.
                    let msg = if i % 50 == 0 {
                        let mut big = vec![0u8; 256 * 1024];
                        big[0] = t as u8;
                        NetMsg::App(AppMsg::from(big))
                    } else {
                        NetMsg::App(AppMsg::from(format!("t{t}:{i}").as_str()))
                    };
                    a.send(to, &msg).expect("send must not fail mid-hammer");
                }
            });
        }
    });

    // Every frame must arrive intact: one torn frame desyncs the length
    // prefix, the decoder rejects the garbage, and the connection drops —
    // observable as missing messages here.
    let mut got = 0u64;
    let mut small_seen: BTreeMap<u64, u64> = BTreeMap::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while got < THREADS * PER_THREAD {
        let left = deadline.saturating_duration_since(Instant::now());
        let Some((_, msg)) = b.recv_timeout(left.min(Duration::from_secs(5))) else {
            panic!(
                "only {got}/{} frames arrived — a frame was torn or a reader died",
                THREADS * PER_THREAD
            );
        };
        got += 1;
        let NetMsg::App(appmsg) = msg else { panic!("unexpected message kind") };
        let bytes = appmsg.as_bytes();
        if bytes.len() < 1024 {
            // Small frames carry "t<thread>:<i>": FIFO per sender thread
            // is preserved through the shared writer queue.
            let text = String::from_utf8(bytes.to_vec()).expect("frame payload corrupted");
            let (t, i) = text
                .strip_prefix('t')
                .and_then(|r| r.split_once(':'))
                .map(|(t, i)| (t.parse::<u64>().unwrap(), i.parse::<u64>().unwrap()))
                .expect("frame payload corrupted");
            let next = small_seen.entry(t).or_insert(0);
            assert!(i >= *next, "thread {t} frames reordered: saw {i} after {next}");
            *next = i + 1;
        }
    }
    assert_eq!(got, THREADS * PER_THREAD);
}

/// Bug 3: threads racing the first send to the same peer must end up
/// sharing one connection — one handshake, one accepted socket — instead
/// of double-connecting and evicting each other's live stream.
#[test]
fn racing_first_sends_share_one_connection() {
    const TRIALS: usize = 20;
    const RACERS: usize = 4;

    for trial in 0..TRIALS {
        let a = TcpTransport::bind(p(1), "127.0.0.1:0").unwrap();
        let b = TcpTransport::bind(p(2), "127.0.0.1:0").unwrap();
        a.register_peer(p(2), b.local_addr());
        let to: ProcSet = [p(2)].into_iter().collect();

        let barrier = Barrier::new(RACERS);
        std::thread::scope(|s| {
            for r in 0..RACERS {
                let a = &a;
                let to = &to;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    a.send(to, &NetMsg::App(AppMsg::from(format!("r{r}").as_str())))
                        .expect("racing first send failed");
                });
            }
        });

        // All four racers' frames arrive (none rode a socket that a rival
        // insert evicted)...
        for _ in 0..RACERS {
            b.recv_timeout(Duration::from_secs(5))
                .expect("a racer's frame was lost to an evicted connection");
        }
        // ...and the receiver accepted exactly one inbound connection.
        // Pre-rebuild, racing `connection_to` calls each dialed and
        // handshook their own socket.
        let deadline = Instant::now() + Duration::from_secs(2);
        while b.accepted_connections() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            b.accepted_connections(),
            1,
            "trial {trial}: racing first sends opened more than one connection"
        );
    }
}
