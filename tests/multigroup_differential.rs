//! Differential multi-group conformance suite: a group hosted on the
//! sharded `vsgm-server` must be *observationally identical* to the same
//! group run in isolation.
//!
//! Each randomized schedule builds per-group command streams for N
//! groups, interleaves them into one global arrival order (preserving
//! each group's internal order — exactly what the server's router
//! produces), and drives them twice:
//!
//! * **hosted arm** — all N groups through one [`ShardPool`], so groups
//!   sharing a shard worker interleave on one thread and groups on
//!   different shards run concurrently;
//! * **isolated arm** — each group alone in its own [`GroupInstance`],
//!   fed only its own subsequence.
//!
//! The comparison surface is `Trace::to_json_lines()` — the full
//! per-group event trace, byte for byte — plus the spec-checker verdict
//! (`finish()` empty on both arms). Anything the multiplexing layer
//! leaked between groups (shared RNG draws, cross-group routing, state
//! bleed between shard-mates) shows up as a byte diverge.
//!
//! ≥ 50 randomized schedules, plus one pinned worst-case interleaving:
//! three groups forced onto the *same* shard worker, commands dispatched
//! strictly round-robin one at a time.

use std::collections::BTreeMap;
use vsgm_server::{group_seed, GroupCmd, GroupInstance, ShardConfig, ShardPool};
use vsgm_types::{AppMsg, GroupId, ProcessId};

const BASE_SEED: u64 = 0x9E1D_A212;

/// splitmix64 — deterministic schedule generator without a rand dep.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generates one group's command stream: joins up front, then a mix of
/// sends, membership churn, and time advancement. Commands that turn
/// out invalid at apply time (send from a non-member after a leave, a
/// join beyond capacity) are *ignored identically* by both arms, so the
/// generator does not need to track validity.
fn gen_group_schedule(rng: &mut Rng, gid: GroupId, capacity: u64) -> Vec<GroupCmd> {
    let p = ProcessId::new;
    let mut cmds: Vec<GroupCmd> = (1..=capacity).map(|i| GroupCmd::Join(p(i))).collect();
    let len = 8 + rng.below(10);
    let mut msg_no = 0u64;
    for _ in 0..len {
        cmds.push(match rng.below(10) {
            0..=4 => {
                msg_no += 1;
                let from = p(1 + rng.below(capacity));
                GroupCmd::Send {
                    from,
                    msg: AppMsg::from(
                        format!("g{}-{:?}-m{msg_no}", gid.raw(), from).as_str(),
                    ),
                }
            }
            5 => GroupCmd::Leave(p(1 + rng.below(capacity))),
            6 => GroupCmd::Join(p(1 + rng.below(capacity))),
            7 | 8 => GroupCmd::RunForMs(1 + rng.below(4)),
            _ => GroupCmd::Run,
        });
    }
    cmds.push(GroupCmd::Run);
    cmds
}

/// Randomly interleaves per-group streams into one global arrival order,
/// preserving each group's internal order (the only ordering the
/// server's per-shard channels guarantee).
fn interleave(
    rng: &mut Rng,
    streams: &BTreeMap<GroupId, Vec<GroupCmd>>,
) -> Vec<(GroupId, GroupCmd)> {
    let mut cursors: BTreeMap<GroupId, usize> = streams.keys().map(|g| (*g, 0)).collect();
    let mut remaining: Vec<GroupId> = streams.keys().copied().collect();
    let mut order = Vec::new();
    while !remaining.is_empty() {
        let pick = rng.below(remaining.len() as u64) as usize;
        let gid = remaining[pick];
        let cursor = cursors.get_mut(&gid).expect("cursor for every stream");
        let stream = &streams[&gid];
        order.push((gid, stream[*cursor].clone()));
        *cursor += 1;
        if *cursor == stream.len() {
            remaining.remove(pick);
        }
    }
    order
}

/// The isolated arm: one group, alone, fed its own subsequence.
fn isolated_trace(gid: GroupId, capacity: u64, cmds: &[GroupCmd]) -> String {
    let mut g = GroupInstance::new(gid, capacity, group_seed(BASE_SEED, gid));
    for cmd in cmds {
        g.apply(cmd.clone());
    }
    g.run_to_quiescence();
    let violations = g.finish();
    assert!(violations.is_empty(), "isolated {gid}: {violations:?}");
    g.trace_json()
}

/// The hosted arm: every group through one shard pool, commands
/// dispatched in the given global order; returns each group's trace.
fn hosted_traces(
    shards: usize,
    capacity: u64,
    streams: &BTreeMap<GroupId, Vec<GroupCmd>>,
    order: &[(GroupId, GroupCmd)],
) -> BTreeMap<GroupId, String> {
    let pool = ShardPool::spawn(ShardConfig { shards, auto_run: false, outputs: None });
    for gid in streams.keys() {
        pool.create_group(*gid, capacity, group_seed(BASE_SEED, *gid));
    }
    for (gid, cmd) in order {
        pool.apply(*gid, cmd.clone());
    }
    let mut traces = BTreeMap::new();
    for gid in streams.keys() {
        pool.apply(*gid, GroupCmd::Run);
        let violations = pool.finish(*gid).unwrap_or_else(|| panic!("{gid} hosted"));
        assert!(violations.is_empty(), "hosted {gid}: {violations:?}");
        let trace = pool.trace_json(*gid).unwrap_or_else(|| panic!("{gid} hosted"));
        traces.insert(*gid, trace);
    }
    pool.shutdown();
    traces
}

fn assert_schedule_conforms(seed: u64, n_groups: u64, shards: usize, capacity: u64) {
    let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(seed | 1));
    let streams: BTreeMap<GroupId, Vec<GroupCmd>> = (1..=n_groups)
        .map(|g| {
            let gid = GroupId::new(g);
            let cmds = gen_group_schedule(&mut rng, gid, capacity);
            (gid, cmds)
        })
        .collect();
    let order = interleave(&mut rng, &streams);
    let hosted = hosted_traces(shards, capacity, &streams, &order);
    for (gid, cmds) in &streams {
        // The isolated run also ends with the hosted arm's trailing Run.
        let mut cmds = cmds.clone();
        cmds.push(GroupCmd::Run);
        let isolated = isolated_trace(*gid, capacity, &cmds);
        let hosted_trace = &hosted[gid];
        assert_eq!(
            hosted_trace, &isolated,
            "seed {seed} {gid}: hosted trace diverged from the isolated run"
        );
    }
}

#[test]
fn fifty_randomized_multigroup_schedules_are_conformant() {
    // ≥ 50 randomized schedules varying group count (2..=4), shard count
    // (1..=4 — including 1, where *every* group shares one worker), and
    // capacity (2..=3).
    for seed in 0..50u64 {
        let n_groups = 2 + seed % 3;
        let shards = 1 + (seed % 4) as usize;
        let capacity = 2 + seed % 2;
        assert_schedule_conforms(seed, n_groups, shards, capacity);
    }
}

#[test]
fn pinned_same_shard_round_robin_interleaving_is_conformant() {
    // Pinned worst case: gids 2, 4, 6 all map to shard 0 of a 2-shard
    // pool (`gid % 2 == 0`), so one worker interleaves all three groups;
    // commands are dispatched strictly round-robin, one at a time — the
    // maximally fine-grained interleaving the router can produce.
    let p = ProcessId::new;
    let capacity = 3u64;
    let gids = [GroupId::new(2), GroupId::new(4), GroupId::new(6)];
    let mk_stream = |gid: GroupId| -> Vec<GroupCmd> {
        vec![
            GroupCmd::Join(p(1)),
            GroupCmd::Join(p(2)),
            GroupCmd::Join(p(3)),
            GroupCmd::Send { from: p(1), msg: AppMsg::from(format!("a{}", gid.raw()).as_str()) },
            GroupCmd::Send { from: p(2), msg: AppMsg::from(format!("b{}", gid.raw()).as_str()) },
            GroupCmd::RunForMs(2),
            GroupCmd::Leave(p(3)),
            GroupCmd::Send { from: p(1), msg: AppMsg::from(format!("c{}", gid.raw()).as_str()) },
            GroupCmd::Run,
        ]
    };
    let streams: BTreeMap<GroupId, Vec<GroupCmd>> =
        gids.iter().map(|g| (*g, mk_stream(*g))).collect();
    // Strict round-robin: g2[0], g4[0], g6[0], g2[1], ...
    let stream_len = streams[&gids[0]].len();
    let mut order = Vec::new();
    for i in 0..stream_len {
        for gid in &gids {
            order.push((*gid, streams[gid][i].clone()));
        }
    }
    let pool = ShardPool::spawn(ShardConfig { shards: 2, auto_run: false, outputs: None });
    for gid in &gids {
        assert_eq!(pool.shard_of(*gid), 0, "pinned gids must share shard 0");
        pool.create_group(*gid, capacity, group_seed(BASE_SEED, *gid));
    }
    for (gid, cmd) in &order {
        pool.apply(*gid, cmd.clone());
    }
    for gid in &gids {
        pool.apply(*gid, GroupCmd::Run);
        assert_eq!(pool.finish(*gid), Some(vec![]), "hosted {gid} checkers");
        let hosted = pool.trace_json(*gid).expect("hosted trace");
        let mut cmds = streams[gid].clone();
        cmds.push(GroupCmd::Run);
        let isolated = isolated_trace(*gid, capacity, &cmds);
        assert_eq!(hosted, isolated, "{gid}: same-shard interleaving leaked between groups");
    }
    pool.shutdown();
}

#[test]
fn per_group_seeds_differ_so_groups_are_not_clones() {
    // Guard on the suite itself: distinct gids get distinct seeds, so a
    // conformance pass is not vacuous (all groups running the same
    // schedule would otherwise share identical traces *and* identical
    // bugs).
    let s1 = group_seed(BASE_SEED, GroupId::new(1));
    let s2 = group_seed(BASE_SEED, GroupId::new(2));
    assert_ne!(s1, s2);
    // And the same gid reproduces its seed (the isolated arm depends on
    // this).
    assert_eq!(s1, group_seed(BASE_SEED, GroupId::new(1)));
}
