//! Liveness (Property 4.2): whenever the membership stabilizes on a view,
//! the GCS delivers that view to every member and every message sent in
//! it — judged at quiescence, across adverse histories.

use vsgm_core::{Config, ForwardStrategyKind};
use vsgm_harness::sim::{procs, procs_of};
use vsgm_harness::{Sim, SimOptions};
use vsgm_spec::LivenessSpec;
use vsgm_types::{AppMsg, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn opts(seed: u64) -> SimOptions {
    SimOptions { seed, ..SimOptions::default() }
}

#[test]
fn liveness_after_clean_start() {
    for seed in 0..5 {
        let mut sim = Sim::new_paper(4, Config::default(), opts(seed));
        let v = sim.reconfigure(&procs(4));
        sim.add_checker(LivenessSpec::new(v));
        for i in 1..=4 {
            sim.send(p(i), AppMsg::from(format!("{i}").as_str()));
        }
        sim.run_to_quiescence();
        sim.assert_clean();
    }
}

#[test]
fn liveness_after_cascades() {
    let mut sim = Sim::new_paper(4, Config::default(), opts(1));
    sim.reconfigure(&procs(4));
    sim.run_to_quiescence();
    // Several aborted attempts, then stabilization.
    sim.start_change(&procs(4));
    sim.start_change(&procs(3));
    sim.start_change(&procs(4));
    let v = sim.form_view(&procs(4));
    sim.add_checker(LivenessSpec::new(v));
    sim.send(p(4), AppMsg::from("stable at last"));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn liveness_after_partition_merge() {
    let mut sim = Sim::new_paper(4, Config::default(), opts(2));
    sim.reconfigure(&procs(4));
    sim.run_to_quiescence();
    sim.partition(&[vec![p(1), p(2)], vec![p(3), p(4)]]);
    sim.start_change_for(&procs_of(&[1, 2]), &procs_of(&[1, 2]));
    sim.form_view(&procs_of(&[1, 2]));
    sim.start_change_for(&procs_of(&[3, 4]), &procs_of(&[3, 4]));
    sim.form_view(&procs_of(&[3, 4]));
    sim.send(p(2), AppMsg::from("A"));
    sim.send(p(3), AppMsg::from("B"));
    sim.run_to_quiescence();
    sim.heal();
    let merged = sim.reconfigure(&procs(4));
    sim.add_checker(LivenessSpec::new(merged));
    for i in 1..=4 {
        sim.send(p(i), AppMsg::from(format!("merged {i}").as_str()));
    }
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn liveness_with_forwarding_requirement() {
    // The stable view can only be installed after p2 recovers p4's
    // messages via forwarding — liveness therefore depends on the
    // forwarding strategy, for both strategies.
    for strategy in [ForwardStrategyKind::Eager, ForwardStrategyKind::MinCopy] {
        let cfg = Config { forward: strategy, ..Config::default() };
        let mut sim = Sim::new_paper(4, cfg, opts(3));
        sim.reconfigure(&procs(4));
        sim.run_to_quiescence();
        sim.partition(&[vec![p(1), p(3), p(4)], vec![p(2)]]);
        sim.send(p(4), AppMsg::from("needs forwarding"));
        sim.run_to_quiescence();
        sim.crash(p(4));
        sim.heal();
        let v = sim.reconfigure(&procs_of(&[1, 2, 3]));
        sim.add_checker(LivenessSpec::new(v));
        sim.run_to_quiescence();
        sim.assert_clean();
    }
}

#[test]
fn liveness_vacuous_when_membership_keeps_changing() {
    // If stabilization never happens the property holds vacuously; the
    // run must still be safe.
    let mut sim = Sim::new_paper(3, Config::default(), opts(4));
    let v0 = sim.reconfigure(&procs(3));
    sim.add_checker(LivenessSpec::new(v0));
    // Membership immediately changes its mind again (premise broken).
    sim.start_change(&procs(2));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn liveness_after_recovery_rejoin() {
    let mut sim = Sim::new_paper(3, Config::default(), opts(5));
    sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    sim.crash(p(2));
    sim.reconfigure(&procs_of(&[1, 3]));
    sim.run_to_quiescence();
    sim.recover(p(2));
    let v = sim.reconfigure(&procs(3));
    sim.add_checker(LivenessSpec::new(v));
    sim.send(p(2), AppMsg::from("I am back"));
    sim.run_to_quiescence();
    sim.assert_clean();
}

#[test]
fn liveness_under_blocked_client_queueing() {
    // Sends issued mid-change are queued by the client and released on
    // the view — they count as sends *after* the view, so Property 4.2
    // still demands their delivery.
    let mut sim = Sim::new_paper(3, Config::default(), opts(6));
    sim.reconfigure(&procs(3));
    sim.run_to_quiescence();
    sim.start_change(&procs(3));
    for i in 1..=3 {
        sim.send(p(i), AppMsg::from(format!("queued {i}").as_str()));
    }
    let v = sim.form_view(&procs(3));
    sim.add_checker(LivenessSpec::new(v));
    sim.run_to_quiescence();
    sim.assert_clean();
}
