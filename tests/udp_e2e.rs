//! The paper's deployment stack, end to end: GCS end-points over the
//! reliable datagram service ([36]-style, UDP + seq/ack/retransmit),
//! including under injected datagram loss.

use std::time::{Duration, Instant};
use vsgm_core::node::AppEvent;
use vsgm_core::{Config, Endpoint, Input, Node};
use vsgm_net::{Transport, UdpTransport};
use vsgm_types::{AppMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn cluster(n: u64, loss: f64) -> Vec<Node<UdpTransport>> {
    let transports: Vec<UdpTransport> =
        (1..=n).map(|i| UdpTransport::bind(p(i), "127.0.0.1:0").expect("bind")).collect();
    let addrs: Vec<_> = transports.iter().map(|t| t.local_addr()).collect();
    for (k, t) in transports.iter().enumerate() {
        t.set_loss(loss, 100 + k as u64);
        for i in 1..=n {
            if p(i) != t.me() {
                t.register_peer(p(i), addrs[(i - 1) as usize]);
            }
        }
    }
    transports
        .into_iter()
        .map(|t| {
            let me = t.me();
            Node::new(Endpoint::new(me, Config::default()), t)
        })
        .collect()
}

fn run_view_and_burst(loss: f64, burst: usize, budget: Duration) {
    let mut nodes = cluster(3, loss);
    let members: ProcSet = (1..=3).map(p).collect();
    let view = View::new(
        ViewId::new(1, 0),
        members.iter().copied(),
        members.iter().map(|&m| (m, StartChangeId::new(1))),
    );
    let mut events: Vec<(ProcessId, AppEvent)> = Vec::new();
    for n in nodes.iter_mut() {
        let me = n.endpoint().pid();
        for e in n
            .membership(Input::StartChange { cid: StartChangeId::new(1), set: members.clone() })
            .unwrap()
        {
            events.push((me, e));
        }
        for e in n.membership(Input::MbrshpView(view.clone())).unwrap() {
            events.push((me, e));
        }
    }
    let deadline = Instant::now() + budget;
    // Install the view everywhere.
    while events.iter().filter(|(_, e)| matches!(e, AppEvent::View { .. })).count() < 3 {
        assert!(Instant::now() < deadline, "views never installed; saw {events:?}");
        for n in nodes.iter_mut() {
            let me = n.endpoint().pid();
            for e in n.pump(Duration::from_millis(5)).unwrap() {
                events.push((me, e));
            }
        }
    }
    // Burst from p1; everyone must deliver all of it, in order.
    for k in 0..burst {
        let me = nodes[0].endpoint().pid();
        for e in nodes[0].send(AppMsg::from(format!("m{k}").as_str())).unwrap() {
            events.push((me, e));
        }
    }
    let want = burst * 3;
    while events.iter().filter(|(_, e)| matches!(e, AppEvent::Delivered { .. })).count() < want {
        assert!(
            Instant::now() < deadline,
            "deliveries incomplete: {}/{want}",
            events.iter().filter(|(_, e)| matches!(e, AppEvent::Delivered { .. })).count()
        );
        for n in nodes.iter_mut() {
            let me = n.endpoint().pid();
            for e in n.pump(Duration::from_millis(5)).unwrap() {
                events.push((me, e));
            }
        }
    }
    for i in 1..=3u64 {
        let got: Vec<String> = events
            .iter()
            .filter_map(|(to, e)| match e {
                AppEvent::Delivered { from, msg } if *to == p(i) && *from == p(1) => {
                    Some(String::from_utf8_lossy(msg.as_bytes()).into_owned())
                }
                _ => None,
            })
            .collect();
        let expected: Vec<String> = (0..burst).map(|k| format!("m{k}")).collect();
        assert_eq!(got, expected, "receiver p{i} out of order");
    }
}

#[test]
fn gcs_over_udp_lossless() {
    run_view_and_burst(0.0, 20, Duration::from_secs(20));
}

#[test]
fn gcs_over_udp_with_datagram_loss() {
    // 15% loss on every node's outbound datagrams: the [36]-style
    // reliability layer must mask it completely — same FIFO guarantees,
    // same view change, just slower.
    run_view_and_burst(0.15, 15, Duration::from_secs(40));
}

#[test]
fn view_change_completes_under_loss() {
    let mut nodes = cluster(2, 0.2);
    let members: ProcSet = (1..=2).map(p).collect();
    let mut events: Vec<(ProcessId, AppEvent)> = Vec::new();
    for epoch in 1..=3u64 {
        let view = View::new(
            ViewId::new(epoch, 0),
            members.iter().copied(),
            members.iter().map(|&m| (m, StartChangeId::new(epoch))),
        );
        for n in nodes.iter_mut() {
            let me = n.endpoint().pid();
            for e in n
                .membership(Input::StartChange {
                    cid: StartChangeId::new(epoch),
                    set: members.clone(),
                })
                .unwrap()
            {
                events.push((me, e));
            }
            for e in n.membership(Input::MbrshpView(view.clone())).unwrap() {
                events.push((me, e));
            }
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let want = 2 * epoch as usize;
        while events.iter().filter(|(_, e)| matches!(e, AppEvent::View { .. })).count() < want {
            assert!(Instant::now() < deadline, "epoch {epoch} views never installed");
            for n in nodes.iter_mut() {
                let me = n.endpoint().pid();
                for e in n.pump(Duration::from_millis(5)).unwrap() {
                    events.push((me, e));
                }
            }
        }
    }
    // All views installed with the right transitional sets.
    let full: ProcSet = members.clone();
    for (who, e) in &events {
        if let AppEvent::View { view, transitional } = e {
            if view.id().epoch > 1 {
                assert_eq!(transitional, &full, "T at {who} for {view}");
            }
        }
    }
}
