//! End-to-end scenarios with real membership servers (the client-server
//! architecture of Fig. 1): servers agree on views by exchanging one
//! round of proposals over their own network while the GCS end-points run
//! the virtual-synchrony round underneath — in parallel, as the paper
//! designs.

use vsgm_core::Config;
use vsgm_harness::server_sim::ServerSim;
use vsgm_harness::sim::procs_of;
use vsgm_harness::SimOptions;
use vsgm_types::{AppMsg, Event, ProcSet, ProcessId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn two_by_three() -> ServerSim {
    ServerSim::new(
        vec![
            (p(1001), vec![p(1), p(2), p(3)]),
            (p(1002), vec![p(4), p(5), p(6)]),
        ],
        Config::default(),
        SimOptions::default(),
    )
}

#[test]
fn full_lifecycle_through_servers() {
    let mut s = two_by_three();
    let servers = procs_of(&[1001, 1002]);
    let all: ProcSet = (1..=6).map(p).collect();
    s.set_connectivity(&servers, &all);
    for i in 1..=6 {
        assert_eq!(s.sim.endpoint(p(i)).current_view().len(), 6, "client {i}");
    }
    // Workload.
    for i in 1..=6 {
        s.sim.send(p(i), AppMsg::from(format!("c{i}").as_str()));
    }
    s.run_to_quiescence();
    let delivers = s
        .sim
        .trace()
        .entries()
        .iter()
        .filter(|e| matches!(e.event, Event::Deliver { .. }))
        .count();
    assert_eq!(delivers, 36);
    // Churn: two clients leave, then return.
    let four: ProcSet = [1, 2, 4, 5].iter().map(|&i| p(i)).collect();
    s.set_connectivity(&servers, &four);
    for i in [1, 2, 4, 5] {
        assert_eq!(s.sim.endpoint(p(i)).current_view().len(), 4);
    }
    s.set_connectivity(&servers, &all);
    for i in 1..=6 {
        assert_eq!(s.sim.endpoint(p(i)).current_view().len(), 6);
    }
    assert!(s.sim.finish().is_empty());
}

#[test]
fn server_partition_and_merge_with_traffic() {
    let mut s = two_by_three();
    let servers = procs_of(&[1001, 1002]);
    let all: ProcSet = (1..=6).map(p).collect();
    s.set_connectivity(&servers, &all);
    // Client network splits along server lines; each server continues
    // alone.
    s.sim.partition(&[vec![p(1), p(2), p(3)], vec![p(4), p(5), p(6)]]);
    s.set_connectivity(&procs_of(&[1001]), &procs_of(&[1, 2, 3]));
    s.set_connectivity(&procs_of(&[1002]), &procs_of(&[4, 5, 6]));
    s.sim.send(p(1), AppMsg::from("left side"));
    s.sim.send(p(6), AppMsg::from("right side"));
    s.run_to_quiescence();
    // Concurrent views with traffic in both.
    assert_eq!(s.sim.endpoint(p(1)).current_view().len(), 3);
    assert_eq!(s.sim.endpoint(p(6)).current_view().len(), 3);
    // Merge.
    s.sim.heal();
    s.set_connectivity(&servers, &all);
    for i in 1..=6 {
        assert_eq!(s.sim.endpoint(p(i)).current_view().len(), 6, "client {i}");
    }
    assert!(s.sim.finish().is_empty());
}

#[test]
fn parallel_rounds_one_view_change_latency() {
    // The headline architecture claim: the virtual-synchrony round runs
    // in parallel with the membership round, so end-to-end view-change
    // time is ~max(rounds), not their sum.
    let mut s = two_by_three();
    let servers = procs_of(&[1001, 1002]);
    let all: ProcSet = (1..=6).map(p).collect();
    s.set_connectivity(&servers, &all);
    // Steady-state leave.
    let t0 = s.sim.now();
    let five: ProcSet = (1..=5).map(p).collect();
    s.set_connectivity(&servers, &five);
    let elapsed = s.sim.now().saturating_sub(t0);
    // The GCS view must be installed at the survivors.
    for i in 1..=5 {
        assert_eq!(s.sim.endpoint(p(i)).current_view().len(), 5);
    }
    // One client-side sync round (~one LAN latency, ≤ 200us in the lan()
    // model) dominates; the membership round between the two servers runs
    // concurrently. Budget: well under two sequential round trips.
    assert!(
        elapsed.as_micros() < 1000,
        "view change took {elapsed}, expected parallel rounds"
    );
    assert!(s.sim.finish().is_empty());
}

#[test]
fn four_servers_sixteen_clients() {
    let layout: Vec<(ProcessId, Vec<ProcessId>)> = (0..4)
        .map(|k| {
            (
                p(1001 + k),
                (1..=4).map(|j| p(k * 4 + j)).collect::<Vec<_>>(),
            )
        })
        .collect();
    let servers: ProcSet = layout.iter().map(|(s, _)| *s).collect();
    let all: ProcSet = (1..=16).map(p).collect();
    let mut s = ServerSim::new(layout, Config::default(), SimOptions::default());
    s.set_connectivity(&servers, &all);
    for i in 1..=16 {
        assert_eq!(s.sim.endpoint(p(i)).current_view().len(), 16, "client {i}");
    }
    s.sim.send(p(7), AppMsg::from("big group"));
    s.run_to_quiescence();
    let delivers = s
        .sim
        .trace()
        .entries()
        .iter()
        .filter(|e| matches!(e.event, Event::Deliver { .. }))
        .count();
    assert_eq!(delivers, 16);
    assert!(s.sim.finish().is_empty());
}
