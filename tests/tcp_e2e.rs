//! End-to-end over real TCP sockets: the runtime `Node` pump with the
//! full algorithm, single-threaded round-robin for determinism.

use std::time::{Duration, Instant};
use vsgm_core::node::AppEvent;
use vsgm_core::{Config, Endpoint, Input, Node};
use vsgm_net::{TcpConfig, TcpTransport, Transport, WireFormat};
use vsgm_types::{AppMsg, ProcSet, ProcessId, StartChangeId, View, ViewId};

fn p(i: u64) -> ProcessId {
    ProcessId::new(i)
}

fn cluster(n: u64) -> Vec<Node<TcpTransport>> {
    cluster_with(n, |_| TcpConfig::default())
}

fn cluster_with(n: u64, config: impl Fn(u64) -> TcpConfig) -> Vec<Node<TcpTransport>> {
    let transports: Vec<TcpTransport> = (1..=n)
        .map(|i| TcpTransport::bind_with(p(i), "127.0.0.1:0", config(i)).expect("bind"))
        .collect();
    let addrs: Vec<_> = transports.iter().map(|t| t.local_addr()).collect();
    for t in &transports {
        for i in 1..=n {
            if p(i) != t.me() {
                t.register_peer(p(i), addrs[(i - 1) as usize]);
            }
        }
    }
    transports
        .into_iter()
        .map(|t| {
            let me = t.me();
            Node::new(Endpoint::new(me, Config::default()), t)
        })
        .collect()
}

fn scripted_view(members: &ProcSet, epoch: u64, cid: u64) -> View {
    View::new(
        ViewId::new(epoch, 0),
        members.iter().copied(),
        members.iter().map(|&m| (m, StartChangeId::new(cid))),
    )
}

fn pump_all(nodes: &mut [Node<TcpTransport>], events: &mut Vec<(ProcessId, AppEvent)>) {
    for n in nodes.iter_mut() {
        let me = n.endpoint().pid();
        for e in n.pump(Duration::from_millis(5)).expect("pump") {
            events.push((me, e));
        }
    }
}

fn pump_until(
    nodes: &mut [Node<TcpTransport>],
    events: &mut Vec<(ProcessId, AppEvent)>,
    mut done: impl FnMut(&[(ProcessId, AppEvent)]) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !done(events) {
        assert!(Instant::now() < deadline, "timeout; events: {events:#?}");
        pump_all(nodes, events);
    }
}

fn form_view(
    nodes: &mut [Node<TcpTransport>],
    events: &mut Vec<(ProcessId, AppEvent)>,
    members: &ProcSet,
    epoch: u64,
    cid: u64,
) -> View {
    let view = scripted_view(members, epoch, cid);
    for n in nodes.iter_mut() {
        if members.contains(&n.endpoint().pid()) {
            let me = n.endpoint().pid();
            for e in n
                .membership(Input::StartChange { cid: StartChangeId::new(cid), set: members.clone() })
                .expect("membership")
            {
                events.push((me, e));
            }
        }
    }
    for n in nodes.iter_mut() {
        if members.contains(&n.endpoint().pid()) {
            let me = n.endpoint().pid();
            for e in n.membership(Input::MbrshpView(view.clone())).expect("membership") {
                events.push((me, e));
            }
        }
    }
    let expected = members.len();
    let v = view.clone();
    pump_until(nodes, events, |evs| {
        evs.iter()
            .filter(|(_, e)| matches!(e, AppEvent::View { view, .. } if view == &v))
            .count()
            >= expected
    });
    view
}

#[test]
fn three_nodes_view_and_fifo_multicast() {
    let mut nodes = cluster(3);
    let mut events = Vec::new();
    let members: ProcSet = (1..=3).map(p).collect();
    form_view(&mut nodes, &mut events, &members, 1, 1);

    // A FIFO burst from p1.
    for k in 0..10 {
        let me = nodes[0].endpoint().pid();
        for e in nodes[0].send(AppMsg::from(format!("m{k}").as_str())).expect("send") {
            events.push((me, e));
        }
    }
    pump_until(&mut nodes, &mut events, |evs| {
        evs.iter().filter(|(_, e)| matches!(e, AppEvent::Delivered { .. })).count() >= 30
    });
    // Per receiver, messages arrive in send order.
    for i in 1..=3u64 {
        let got: Vec<String> = events
            .iter()
            .filter_map(|(to, e)| match e {
                AppEvent::Delivered { from, msg } if *to == p(i) && *from == p(1) => {
                    Some(String::from_utf8_lossy(msg.as_bytes()).into_owned())
                }
                _ => None,
            })
            .collect();
        let expected: Vec<String> = (0..10).map(|k| format!("m{k}")).collect();
        assert_eq!(got, expected, "receiver p{i}");
    }
}

#[test]
fn mixed_wire_formats_interoperate_in_one_group() {
    // Rolling-transition shape: p1 still sends JSON frames while p2/p3
    // send binary. The sniffing decoder means the full GCS — view
    // formation, sync rounds, FIFO multicast — must work unchanged.
    let mut nodes = cluster_with(3, |i| TcpConfig {
        wire_format: if i == 1 { WireFormat::Json } else { WireFormat::Binary },
        ..TcpConfig::default()
    });
    let mut events = Vec::new();
    let members: ProcSet = (1..=3).map(p).collect();
    form_view(&mut nodes, &mut events, &members, 1, 1);

    for sender in 0..3usize {
        let me = nodes[sender].endpoint().pid();
        for e in nodes[sender].send(AppMsg::from(format!("from {me}").as_str())).expect("send") {
            events.push((me, e));
        }
    }
    // Each of the 3 messages reaches all 3 members (self-delivery
    // included), across the format boundary in both directions.
    pump_until(&mut nodes, &mut events, |evs| {
        evs.iter().filter(|(_, e)| matches!(e, AppEvent::Delivered { .. })).count() >= 9
    });
}

#[test]
fn view_change_over_tcp_preserves_virtual_synchrony() {
    let mut nodes = cluster(3);
    let mut events = Vec::new();
    let members: ProcSet = (1..=3).map(p).collect();
    form_view(&mut nodes, &mut events, &members, 1, 1);

    // Traffic, then shrink to {1,2}.
    let me = nodes[2].endpoint().pid();
    for e in nodes[2].send(AppMsg::from("from p3")).expect("send") {
        events.push((me, e));
    }
    pump_until(&mut nodes, &mut events, |evs| {
        evs.iter()
            .filter(|(_, e)| matches!(e, AppEvent::Delivered { msg, .. } if *msg == AppMsg::from("from p3")))
            .count()
            >= 3
    });
    let pair: ProcSet = (1..=2).map(p).collect();
    let v2 = form_view(&mut nodes[..2], &mut events, &pair, 2, 2);
    // Transitional sets on the shrink: both survivors moved together.
    for (who, e) in &events {
        if let AppEvent::View { view, transitional } = e {
            if view == &v2 {
                assert_eq!(transitional, &pair, "T at {who}");
            }
        }
    }
    // Multicast still works in the pair view.
    let me = nodes[0].endpoint().pid();
    for e in nodes[0].send(AppMsg::from("pair msg")).expect("send") {
        events.push((me, e));
    }
    pump_until(&mut nodes[..2], &mut events, |evs| {
        evs.iter()
            .filter(|(_, e)| matches!(e, AppEvent::Delivered { msg, .. } if *msg == AppMsg::from("pair msg")))
            .count()
            >= 2
    });
}
